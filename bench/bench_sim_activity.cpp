// Activity-extraction engines head to head: cycle sweep vs event-driven.
//
// The workload is gated_channel_netlist — many identical CE-gated datapath
// channels behind a one-hot selector, so ~1/channels of the fabric toggles
// per cycle (the activity profile of the paper's clock-gated measurement
// design). The cycle engine pays for every cell every tick; the event engine
// pays only for cells whose inputs changed, which is where long activity
// extractions (§4.3 simulate -> VCD -> power) get their speedup.
//
// Every row is parity-gated before it is reported: identical per-net toggle
// counts, identical final state and probe value, and byte-identical VCD
// dumps between the engines (the dual-engine contract of sim/engine.hpp).
// Emits BENCH_sim_activity.json next to the binary; --json mirrors it to
// stdout. Exit status is non-zero on any parity violation (both modes) or,
// in full mode, when the headline-config speedup falls below the 10x target
// (smoke workloads are too small to time reliably on loaded CI machines).
#include <chrono>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "bench_common.hpp"
#include "refpga/common/rng.hpp"
#include "refpga/common/table.hpp"
#include "refpga/sim/event_sim.hpp"
#include "refpga/sim/random_netlist.hpp"
#include "refpga/sim/simulator.hpp"
#include "refpga/sim/vcd.hpp"

namespace {

using namespace refpga;

bool flag(int argc, char** argv, std::string_view name) {
    for (int i = 1; i < argc; ++i)
        if (std::string_view(argv[i]) == name) return true;
    return false;
}

double now_ms() {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

struct Config {
    int channels;
    int width;
    int depth;
    int cycles;
};

struct Result {
    Config config;
    std::size_t cells = 0;
    double cycle_ms = 0.0;
    double event_ms = 0.0;
    double toggles_per_cycle = 0.0;
    bool parity_ok = true;  ///< toggle counts + final state + probe
    bool vcd_ok = true;     ///< byte-identical dumps

    [[nodiscard]] double speedup() const {
        return event_ms > 0.0 ? cycle_ms / event_ms : 0.0;
    }
};

/// The shared stimulus program: mostly-idle input with an occasional new
/// "stim" word, driven identically into whichever engine runs. Returns the
/// run's wall time; the engine keeps its toggle/state tallies for parity.
double drive(sim::SimEngine& sim, int cycles, std::uint64_t seed,
             std::uint64_t stim_mask) {
    Rng rng(seed);
    sim.set_input("stim", 0x2A5 & stim_mask);
    const double t0 = now_ms();
    for (int t = 1; t <= cycles; ++t) {
        if (t % 97 == 0) sim.set_input("stim", rng.next_u64() & stim_mask);
        sim.tick();
    }
    return now_ms() - t0;
}

/// Byte-compares full-netlist VCD dumps from both engines over a short run
/// (short because the dump itself, not simulation, dominates the cost).
bool vcd_bytes_identical(const netlist::Netlist& nl, int cycles,
                         std::uint64_t stim_mask) {
    std::vector<netlist::NetId> nets;
    nets.reserve(nl.net_count());
    for (std::uint32_t i = 0; i < nl.net_count(); ++i)
        nets.push_back(netlist::NetId{i});

    std::string dumps[2];
    for (int which = 0; which < 2; ++which) {
        const auto engine = sim::make_engine(
            which == 0 ? sim::EngineKind::Cycle : sim::EngineKind::Event, nl);
        std::ostringstream os;
        sim::VcdWriter writer(os, *engine, nets);
        writer.sample(1);
        Rng rng(7);
        for (int t = 1; t <= cycles; ++t) {
            if (t % 13 == 0) engine->set_input("stim", rng.next_u64() & stim_mask);
            engine->tick();
            writer.sample(1 + std::int64_t{t} * 1000);
        }
        dumps[which] = os.str();
    }
    return dumps[0] == dumps[1];
}

Result run_config(const Config& config, int vcd_cycles) {
    Result r;
    r.config = config;
    const netlist::Netlist nl =
        sim::gated_channel_netlist(config.channels, config.width, config.depth);
    r.cells = nl.cell_count();
    const std::uint64_t stim_mask = (std::uint64_t{1} << config.width) - 1;

    sim::Simulator cycle(nl);
    sim::EventSimulator event(nl);
    {  // warm both code paths before timing
        sim::Simulator w1(nl);
        sim::EventSimulator w2(nl);
        (void)drive(w1, 16, 1, stim_mask);
        (void)drive(w2, 16, 1, stim_mask);
    }
    r.cycle_ms = drive(cycle, config.cycles, 2008, stim_mask);
    r.event_ms = drive(event, config.cycles, 2008, stim_mask);

    // Parity gate: the speedup row is meaningless unless the engines agree
    // bit for bit on what they simulated.
    std::int64_t total = 0;
    for (const std::int64_t t : cycle.toggle_counts()) total += t;
    r.toggles_per_cycle = static_cast<double>(total) / config.cycles;
    r.parity_ok = cycle.toggle_counts() == event.toggle_counts() &&
                  cycle.get_port("probe") == event.get_port("probe");
    for (std::uint32_t i = 0; r.parity_ok && i < nl.net_count(); ++i)
        r.parity_ok = cycle.net_value(netlist::NetId{i}) ==
                      event.net_value(netlist::NetId{i});
    r.vcd_ok = vcd_bytes_identical(nl, vcd_cycles, stim_mask);
    if (!r.parity_ok || !r.vcd_ok)
        std::cerr << "PARITY VIOLATION at channels=" << config.channels
                  << " width=" << config.width << " depth=" << config.depth
                  << (r.vcd_ok ? "" : " (VCD bytes)") << "\n";
    return r;
}

}  // namespace

int main(int argc, char** argv) {
    const bool smoke = benchkit::smoke_mode(argc, argv);
    const bool echo_json = flag(argc, argv, "--json");
    benchkit::print_header("sim activity",
                           std::string("event-driven vs cycle engine") +
                               (smoke ? " [smoke]" : ""));

    // The last config is the headline: large fabric, low activity factor.
    const std::vector<Config> configs =
        smoke ? std::vector<Config>{{64, 8, 2, 400}, {128, 12, 4, 200}}
              : std::vector<Config>{
                    {64, 8, 2, 20000}, {128, 12, 4, 8000}, {256, 12, 4, 8000}};
    const int vcd_cycles = smoke ? 48 : 192;

    std::vector<Result> results;
    results.reserve(configs.size());
    for (const Config& config : configs)
        results.push_back(run_config(config, vcd_cycles));
    const Result& headline = results.back();

    Table table({"channels", "width", "depth", "cells", "cycles", "cycle (ms)",
                 "event (ms)", "speedup", "toggles/cycle"});
    for (const Result& r : results)
        table.add_row({std::to_string(r.config.channels),
                       std::to_string(r.config.width),
                       std::to_string(r.config.depth), std::to_string(r.cells),
                       std::to_string(r.config.cycles), Table::num(r.cycle_ms, 1),
                       Table::num(r.event_ms, 1), Table::num(r.speedup(), 1) + "x",
                       Table::num(r.toggles_per_cycle, 1)});
    std::cout << table.render();

    bool parity_ok = true;
    for (const Result& r : results) parity_ok = parity_ok && r.parity_ok && r.vcd_ok;
    std::cout << "headline: " << Table::num(headline.speedup(), 1) << "x on "
              << headline.cells << " cells (activity factor "
              << Table::num(headline.toggles_per_cycle /
                                static_cast<double>(headline.cells),
                            3)
              << " toggles/cell/cycle)\n";
    std::cout << "engines bit-identical (toggles, state, VCD bytes): "
              << (parity_ok ? "yes" : "NO") << "\n";

    std::ostringstream js;
    js << "{\n"
       << "  \"bench\": \"sim_activity\",\n"
       << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
       << "  \"configs\": [";
    for (std::size_t i = 0; i < results.size(); ++i) {
        const Result& r = results[i];
        js << (i > 0 ? ", " : "") << "{\"channels\": " << r.config.channels
           << ", \"width\": " << r.config.width << ", \"depth\": " << r.config.depth
           << ", \"cells\": " << r.cells << ", \"cycles\": " << r.config.cycles
           << ", \"cycle_ms\": " << r.cycle_ms << ", \"event_ms\": " << r.event_ms
           << ", \"speedup\": " << r.speedup()
           << ", \"toggles_per_cycle\": " << r.toggles_per_cycle
           << ", \"parity_ok\": " << (r.parity_ok ? "true" : "false")
           << ", \"vcd_ok\": " << (r.vcd_ok ? "true" : "false") << "}";
    }
    js << "],\n"
       << "  \"headline_speedup\": " << headline.speedup() << ",\n"
       << "  \"parity_ok\": " << (parity_ok ? "true" : "false") << "\n"
       << "}\n";
    std::ofstream("BENCH_sim_activity.json") << js.str();
    if (echo_json) std::cout << js.str();

    if (!parity_ok) {
        std::cerr << "FAIL: the engines disagree — the event engine may not "
                     "be used for activity extraction\n";
        return 1;
    }
    // Timing gate only in full mode; the parity gate above runs in both.
    if (!smoke && headline.speedup() < 10.0) {
        std::cerr << "FAIL: headline event-engine speedup "
                  << headline.speedup() << "x is below the 10x target\n";
        return 1;
    }
    return 0;
}
