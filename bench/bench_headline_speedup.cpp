// §4.2 headline — Software vs hardware processing time.
//
// Paper: "the processing performance increased with approximately a factor
// 1000, from 7 ms of processing time for the software-based algorithms to
// 7 us (without performing reconfiguration)". We measure the soft-core
// executing the ported legacy firmware (soft multiply, code in external
// SRAM), two intermediate software configurations, and the hardware modules.
#include <benchmark/benchmark.h>

#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "refpga/app/golden.hpp"
#include "refpga/app/software.hpp"
#include "refpga/common/table.hpp"

namespace {

using namespace refpga;

std::vector<std::int32_t> tone_window(const app::AppParams& p, double amp, double phi) {
    std::vector<std::int32_t> w(static_cast<std::size_t>(p.window));
    for (int n = 0; n < p.window; ++n)
        w[static_cast<std::size_t>(n)] = static_cast<std::int32_t>(
            std::lround(amp * std::sin(2.0 * M_PI * p.bin * n / p.window + phi)));
    return w;
}

void print_speedup() {
    benchkit::print_header(
        "Headline (§4.2)", "processing time: software vs hardware modules");

    const app::AppParams p;
    const auto meas = tone_window(p, 1400.0, 0.3);
    const auto ref = tone_window(p, 1000.0, 0.0);

    struct Row {
        const char* name;
        double seconds;
        std::uint32_t code_bytes;
    };
    std::vector<Row> rows;

    {
        app::SoftwareConfig cfg;  // legacy port: soft multiply, SRAM code
        const auto run = app::run_software_cycle(meas, ref, p, cfg);
        rows.push_back({"SW: legacy port (soft mul, code in ext. SRAM)",
                        run.seconds(p.system_clock_hz), run.code_bytes});
    }
    {
        app::SoftwareConfig cfg;
        cfg.hw_multiplier = true;
        const auto run = app::run_software_cycle(meas, ref, p, cfg);
        rows.push_back({"SW: + MULT18-backed multiplier",
                        run.seconds(p.system_clock_hz), run.code_bytes});
    }
    {
        app::SoftwareConfig cfg;
        cfg.hw_multiplier = true;
        cfg.code_in_sram = false;
        cfg.padding_bytes = 0;
        const auto run = app::run_software_cycle(meas, ref, p, cfg);
        rows.push_back({"SW: + kernel-only code in LMB BRAM",
                        run.seconds(p.system_clock_hz), run.code_bytes});
    }
    // Hardware: the modules replay the buffered window at the system clock
    // (N MAC cycles + registered combinational tails).
    const double hw_seconds = (p.window + 12.0) / p.system_clock_hz;
    rows.push_back({"HW: data-processing modules (§4.2)", hw_seconds, 0});

    const double sw_baseline = rows.front().seconds;
    Table table({"implementation", "processing time", "speedup vs legacy SW",
                 "code size"});
    for (const auto& row : rows) {
        const double t = row.seconds;
        table.add_row({row.name,
                       t >= 1e-3 ? Table::num(t * 1e3, 2) + " ms"
                                 : Table::num(t * 1e6, 2) + " us",
                       Table::num(sw_baseline / t, 0) + "x",
                       row.code_bytes != 0
                           ? Table::num(static_cast<double>(row.code_bytes) / 1024.0, 1) +
                                 " KB"
                           : "-"});
    }
    std::cout << table.render();
    const double factor = sw_baseline / hw_seconds;
    std::cout << "paper: 7 ms -> 7 us (~1000x). measured: "
              << Table::num(sw_baseline * 1e3, 2) << " ms -> "
              << Table::num(hw_seconds * 1e6, 2) << " us (" << Table::num(factor, 0)
              << "x)\n";
    std::cout << "lower clock headroom: at 1000x, the data-processing clock "
                 "could drop far below 50 MHz and still meet the 100 ms cycle, "
                 "cutting dynamic power (see bench_power_breakdown)\n";
}

void BM_SoftwareCycleLegacy(benchmark::State& state) {
    const app::AppParams p;
    const auto meas = tone_window(p, 1400.0, 0.3);
    const auto ref = tone_window(p, 1000.0, 0.0);
    for (auto _ : state) {
        auto run = app::run_software_cycle(meas, ref, p);
        benchmark::DoNotOptimize(run.level_q15);
    }
}
BENCHMARK(BM_SoftwareCycleLegacy)->Unit(benchmark::kMillisecond);

void BM_GoldenPipelineWindow(benchmark::State& state) {
    const app::AppParams p;
    const auto meas = tone_window(p, 1400.0, 0.3);
    const auto ref = tone_window(p, 1000.0, 0.0);
    app::golden::FilterState filter(p);
    for (auto _ : state) {
        auto result = app::golden::process_window(meas, ref, filter, p);
        benchmark::DoNotOptimize(result.level.level_q15);
    }
}
BENCHMARK(BM_GoldenPipelineWindow)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
    print_speedup();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
