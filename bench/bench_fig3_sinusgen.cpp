// Figure 3 — FPGA-based sinus generator with internal delta-sigma DAC (§4.1).
//
// Paper: 32-entry sine LUT + address counter at 16 MHz generate the 500 kHz
// excitation; the external DAC is replaced by the on-chip delta-sigma core
// plus an external low-pass; "real hardware tests and Fourier analysis"
// confirmed the audio-class core still produces a clean 500 kHz sine at
// 16 MSPS; total cost "ca. 50 slices". We run the generator netlist in the
// cycle simulator, reconstruct its bitstream through the analog model, and
// Fourier-analyze the result; resource cost comes from the packer.
#include <benchmark/benchmark.h>

#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "refpga/analog/delta_sigma.hpp"
#include "refpga/analog/dsp.hpp"
#include "refpga/app/hw_modules.hpp"
#include "refpga/common/table.hpp"

namespace {

using namespace refpga;

struct GeneratorFixture {
    netlist::Netlist nl;
    app::SinusGeneratorIo io;

    GeneratorFixture() {
        const auto clk = nl.add_input_port("clk", 1)[0];
        netlist::Builder b(nl, clk);
        const auto tick = nl.add_input_port("tick", 1);
        io = app::make_sinus_generator(b, tick[0], app::AppParams{});
        nl.add_output_port("code8", io.code8);
        nl.add_output_port("ds_bit", netlist::Bus{io.ds_bit});
    }
};

void print_fig3() {
    benchkit::print_header("Figure 3", "sinus generator with internal DA converter");

    GeneratorFixture gen;

    // Resource cost (paper: "ca. 50 slices for the complete sinus generator").
    const auto stats = netlist::total_stats(gen.nl);
    std::cout << "resource utilization: " << stats.slices() << " slices ("
              << stats.luts << " LUTs, " << stats.ffs
              << " FFs); paper reports ca. 50 slices\n";

    // Fourier analysis of the reconstructed bitstream at 16 MSPS.
    sim::Simulator simulator(gen.nl);
    simulator.set_input("tick", 1);
    analog::RcFilter2 recon(1.5e6, 16e6);
    std::vector<double> signal;
    const int settle = 4096;
    while (signal.size() < 8192) {
        const double bit = simulator.get_port("ds_bit") != 0 ? 1.0 : -1.0;
        const double v = recon.step(bit);
        if (settle < static_cast<int>(simulator.cycle_count())) signal.push_back(v);
        simulator.tick();
    }
    // 16 MHz sampling, 8192 points: 500 kHz lands on bin 8192/32 = 256.
    const analog::ToneQuality q = analog::analyze_tone(signal, 256);
    // In-band quality up to 1 MHz (bin 512): the shaped quantization noise
    // above that is eliminated by the paper's external low-pass/anti-alias
    // filters, so this is the figure that matters for the measurement.
    const double inband_db = analog::band_sndr_db(signal, 256, 512);

    Table table({"metric", "value"});
    table.add_row({"excitation frequency", "500 kHz (bin 256 of 8192 @ 16 MSPS)"});
    table.add_row({"fundamental amplitude", Table::num(q.fundamental_amplitude, 3)});
    table.add_row({"THD (8 harmonics)", Table::num(q.thd_db, 1) + " dB"});
    table.add_row({"full-band SNDR after RC", Table::num(q.sndr_db, 1) + " dB"});
    table.add_row({"in-band SNDR (<= 1 MHz)", Table::num(inband_db, 1) + " dB"});
    std::cout << table.render();
    std::cout << "verdict: delta-sigma DAC "
              << (inband_db > 15.0 ? "produces a usable 500 kHz sine (as §4.1 found)"
                                   : "FAILS the §4.1 check")
              << "\n";

    // 8-bit code path (the first prototype's external DAC) for comparison.
    sim::Simulator sim2(gen.nl);
    sim2.set_input("tick", 1);
    std::vector<double> code_signal;
    while (code_signal.size() < 8192) {
        code_signal.push_back(
            (static_cast<double>(sim2.get_port("code8")) - 128.0) / 128.0);
        sim2.tick();
    }
    const analog::ToneQuality q8 = analog::analyze_tone(code_signal, 256);
    std::cout << "external 8-bit DAC path (pre-filter): THD "
              << Table::num(q8.thd_db, 1) << " dB, SNDR " << Table::num(q8.sndr_db, 1)
              << " dB\n";
}

void BM_SinusGenSimulate4096(benchmark::State& state) {
    GeneratorFixture gen;
    sim::Simulator simulator(gen.nl);
    simulator.set_input("tick", 1);
    for (auto _ : state) {
        simulator.run(4096);
        benchmark::DoNotOptimize(simulator.get_port("ds_bit"));
    }
}
BENCHMARK(BM_SinusGenSimulate4096)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
    print_fig3();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
