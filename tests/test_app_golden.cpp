#include <gtest/gtest.h>

#include <cmath>

#include "refpga/app/golden.hpp"
#include "refpga/app/tables.hpp"

namespace refpga::app {
namespace {

AppParams params() { return AppParams{}; }

/// Synthetic window: amplitude `amp` (PCM counts), phase `phi` radians at the
/// correlation bin.
std::vector<std::int32_t> tone_window(const AppParams& p, double amp, double phi) {
    std::vector<std::int32_t> w(static_cast<std::size_t>(p.window));
    for (int n = 0; n < p.window; ++n)
        w[static_cast<std::size_t>(n)] = static_cast<std::int32_t>(
            std::lround(amp * std::sin(2.0 * M_PI * p.bin * n / p.window + phi)));
    return w;
}

// ---------------------------------------------------------------- tables

TEST(Tables, SineTableSymmetry) {
    const auto t = sine_table(256, 10);
    EXPECT_EQ(t[0], 0);
    EXPECT_EQ(t[64], 511);   // quarter period
    EXPECT_EQ(t[192], -511);
    for (int i = 1; i < 128; ++i) EXPECT_EQ(t[128 + i], -t[i]) << i;
}

TEST(Tables, CosIsShiftedSine) {
    const auto s = sine_table(256, 10);
    const auto c = cosine_table(256, 10);
    for (int i = 0; i < 256; ++i) EXPECT_EQ(c[i], s[(i + 64) % 256]) << i;
}

TEST(Tables, AtanTableDecreasing) {
    const auto t = cordic_atan_table(12, 16);
    EXPECT_EQ(t[0], 8192);  // atan(1) = 1/8 turn
    for (std::size_t i = 1; i < t.size(); ++i) EXPECT_LT(t[i], t[i - 1]);
}

TEST(Tables, CordicGainForTwelveStages) {
    // 1/K = 0.607253 -> Q15 = 19898.
    EXPECT_NEAR(cordic_inv_gain_q15(12), 19898, 1);
}

TEST(Tables, SignedEncodingRoundTrip) {
    for (const std::int32_t v : {0, 1, -1, 511, -512, 1000, -1000})
        EXPECT_EQ(decode_signed(encode_signed(v, 11), 11), v) << v;
}

// ---------------------------------------------------------------- cordic

TEST(GoldenCordic, KnownAngles) {
    const AppParams p = params();
    // 45 degrees: atan2(1000, 1000) = 1/8 turn = 8192.
    const auto r45 = golden::cordic_vector(20000, 20000, p);
    EXPECT_NEAR(static_cast<double>(r45.angle), 8192.0, 40.0);
    // 0 degrees (result may land just below 2^16 due to rounding).
    const auto r0 = golden::cordic_vector(30000, 0, p);
    const auto wrapped = std::min(r0.angle, 65536u - r0.angle);
    EXPECT_LE(wrapped, 60u);
    // 90 degrees = 16384.
    const auto r90 = golden::cordic_vector(0, 30000, p);
    EXPECT_NEAR(static_cast<double>(r90.angle), 16384.0, 40.0);
}

TEST(GoldenCordic, NegativeXQuadrants) {
    const AppParams p = params();
    // 135 degrees = 24576 turns units.
    const auto r = golden::cordic_vector(-20000, 20000, p);
    EXPECT_NEAR(static_cast<double>(r.angle), 24576.0, 40.0);
    // -135 degrees = 40960 (mod 2^16).
    const auto r2 = golden::cordic_vector(-20000, -20000, p);
    EXPECT_NEAR(static_cast<double>(r2.angle), 40960.0, 40.0);
}

class CordicSweep : public ::testing::TestWithParam<int> {};

TEST_P(CordicSweep, MagnitudeAndAngleTrackAtan2) {
    const AppParams p = params();
    const double deg = GetParam();
    const double rad = deg * M_PI / 180.0;
    const auto x = static_cast<std::int32_t>(30000 * std::cos(rad));
    const auto y = static_cast<std::int32_t>(30000 * std::sin(rad));
    const auto r = golden::cordic_vector(x, y, p);
    // Magnitude carries the CORDIC gain K = 1.6468.
    EXPECT_NEAR(r.magnitude, 30000 * 1.6468, 30000 * 0.01);
    const double got_turns = static_cast<double>(r.angle) / 65536.0;
    double want_turns = rad / (2.0 * M_PI);
    if (want_turns < 0) want_turns += 1.0;
    double diff = std::abs(got_turns - want_turns);
    if (diff > 0.5) diff = 1.0 - diff;
    EXPECT_LT(diff, 0.001) << deg << " degrees";
}

INSTANTIATE_TEST_SUITE_P(Angles, CordicSweep,
                         ::testing::Values(3, 30, 60, 89, 91, 150, 179, 181, 225,
                                           269, 300, 357));

// ---------------------------------------------------------------- amp/phase

TEST(GoldenAmpPhase, RecoversAmplitudeOfSyntheticTone) {
    const AppParams p = params();
    const auto meas = tone_window(p, 1500.0, 0.3);
    const auto ref = tone_window(p, 1000.0, 0.0);
    const auto acc = golden::accumulate_window(meas, ref, p);
    const auto m = golden::amp_phase(acc.i_meas, acc.q_meas, p);
    const auto r = golden::amp_phase(acc.i_ref, acc.q_ref, p);
    // Amplitude ratio should track 1.5.
    EXPECT_NEAR(static_cast<double>(m.amplitude) / r.amplitude, 1.5, 0.02);
}

TEST(GoldenAmpPhase, PhaseDifferenceRecovered) {
    const AppParams p = params();
    const double dphi = 0.7;  // radians
    const auto meas = tone_window(p, 1200.0, dphi);
    const auto ref = tone_window(p, 1200.0, 0.0);
    const auto acc = golden::accumulate_window(meas, ref, p);
    const auto m = golden::amp_phase(acc.i_meas, acc.q_meas, p);
    const auto r = golden::amp_phase(acc.i_ref, acc.q_ref, p);
    // Convention: the correlator computes atan2(Q, I) with I = sum x*cos and
    // Q = sum x*sin, which maps a signal phase lead of dphi to a *decrease*
    // of the reported angle. Only |delta| matters downstream (cos is even).
    const auto delta = (r.phase - m.phase) & 0xFFFFu;
    const double got = static_cast<double>(delta) / 65536.0 * 2.0 * M_PI;
    EXPECT_NEAR(got, dphi, 0.02);
}

TEST(GoldenAmpPhase, ZeroInputGivesZeroAmplitude) {
    const AppParams p = params();
    const std::vector<std::int32_t> zeros(static_cast<std::size_t>(p.window), 0);
    const auto acc = golden::accumulate_window(zeros, zeros, p);
    EXPECT_EQ(acc.i_meas, 0);
    EXPECT_EQ(acc.q_meas, 0);
    const auto m = golden::amp_phase(acc.i_meas, acc.q_meas, p);
    EXPECT_EQ(m.amplitude, 0u);
}

// ---------------------------------------------------------------- divide

TEST(GoldenDivide, ExactQuotients) {
    EXPECT_EQ(golden::divide_sat(1000, 1000, 12, 14), 4096u);  // ratio 1.0
    EXPECT_EQ(golden::divide_sat(1500, 1000, 12, 14), 6144u);  // ratio 1.5
    EXPECT_EQ(golden::divide_sat(1, 2, 12, 14), 2048u);        // ratio 0.5
    EXPECT_EQ(golden::divide_sat(0, 55, 12, 14), 0u);
}

TEST(GoldenDivide, SaturatesOnOverflowAndZeroDivisor) {
    EXPECT_EQ(golden::divide_sat(60000, 1, 12, 14), 16383u);
    EXPECT_EQ(golden::divide_sat(7, 0, 12, 14), 16383u);
}

class DivideSweep : public ::testing::TestWithParam<std::pair<unsigned, unsigned>> {};

TEST_P(DivideSweep, MatchesWideIntegerReference) {
    const auto [num, den] = GetParam();
    const std::uint64_t wide = (static_cast<std::uint64_t>(num) << 12) / den;
    const std::uint32_t expected =
        wide > 16383 ? 16383u : static_cast<std::uint32_t>(wide);
    EXPECT_EQ(golden::divide_sat(num, den, 12, 14), expected);
}

INSTANTIATE_TEST_SUITE_P(Cases, DivideSweep,
                         ::testing::Values(std::pair{100u, 7u}, std::pair{65535u, 65535u},
                                           std::pair{1u, 65535u}, std::pair{40000u, 9999u},
                                           std::pair{12345u, 6789u}, std::pair{3u, 1u}));

// ---------------------------------------------------------------- capacity

TEST(GoldenCapacity, EqualChannelsGiveCref) {
    const AppParams p = params();
    golden::ChannelResult m{1000, 0};
    golden::ChannelResult r{1000, 0};
    const auto cap = golden::capacity(m, r, p);
    // ratio 1.0, cos(0) = 1 -> C = C_ref.
    EXPECT_NEAR(static_cast<double>(cap.cap_pf_q4) / 16.0, p.c_ref_pf,
                p.c_ref_pf * 0.01);
}

TEST(GoldenCapacity, RatioScalesCapacity) {
    const AppParams p = params();
    const auto cap2 = golden::capacity({2000, 0}, {1000, 0}, p);
    EXPECT_NEAR(static_cast<double>(cap2.cap_pf_q4) / 16.0, 2.0 * p.c_ref_pf,
                p.c_ref_pf * 0.02);
}

TEST(GoldenCapacity, PhaseShiftReducesCapacitiveComponent) {
    const AppParams p = params();
    // 60 degrees phase difference: cos = 0.5.
    const std::uint32_t dphi60 = 65536u / 6u;
    const auto cap = golden::capacity({1000, dphi60}, {1000, 0}, p);
    EXPECT_NEAR(static_cast<double>(cap.cap_pf_q4) / 16.0, 0.5 * p.c_ref_pf,
                p.c_ref_pf * 0.02);
}

TEST(GoldenCapacity, NegativeCosineClampsToZero) {
    const AppParams p = params();
    const std::uint32_t dphi180 = 32768u;
    const auto cap = golden::capacity({1000, dphi180}, {1000, 0}, p);
    EXPECT_EQ(cap.cap_pf_q4, 0u);
}

// ---------------------------------------------------------------- filter

TEST(GoldenFilter, ConvergesToConstantInput) {
    const AppParams p = params();
    golden::FilterState filter(p);
    const std::uint32_t cap = static_cast<std::uint32_t>(270.0 * 16.0);  // 270 pF
    golden::FilterState::Output out{};
    for (int i = 0; i < 200; ++i) out = filter.step(cap);
    const double expected_level =
        (270.0 - p.c_empty_pf) / (p.c_full_pf - p.c_empty_pf);
    EXPECT_NEAR(static_cast<double>(out.level_q15) / 32768.0, expected_level, 0.01);
}

TEST(GoldenFilter, MedianRejectsSingleOutlier) {
    const AppParams p = params();
    golden::FilterState with_spike(p);
    golden::FilterState without(p);
    const std::uint32_t cap = 4000;
    for (int i = 0; i < 50; ++i) {
        (void)without.step(cap);
        (void)with_spike.step(i == 25 ? 60000u : cap);
    }
    // One spike is absorbed by the median: EMA states stay close.
    EXPECT_NEAR(static_cast<double>(with_spike.ema()), static_cast<double>(without.ema()),
                2.0);
}

TEST(GoldenFilter, AlarmsAtExtremes) {
    const AppParams p = params();
    golden::FilterState filter(p);
    golden::FilterState::Output out{};
    for (int i = 0; i < 300; ++i)
        out = filter.step(static_cast<std::uint32_t>(p.c_full_q4()));
    EXPECT_TRUE(out.alarm_high);
    EXPECT_FALSE(out.alarm_low);

    golden::FilterState low(p);
    for (int i = 0; i < 300; ++i)
        out = low.step(static_cast<std::uint32_t>(p.c_empty_q4()));
    EXPECT_TRUE(out.alarm_low);
}

TEST(GoldenFilter, LevelClampedToQ15) {
    const AppParams p = params();
    golden::FilterState filter(p);
    golden::FilterState::Output out{};
    for (int i = 0; i < 300; ++i) out = filter.step(0xFFFF);
    EXPECT_EQ(out.level_q15, 32767u);
}

// ---------------------------------------------------------------- end-to-end

TEST(GoldenPipeline, WindowToLevelTracksRatio) {
    const AppParams p = params();
    golden::FilterState filter(p);
    // Simulated channels: meas amplitude corresponds to C = 1.5 * C_ref = 330 pF.
    const auto meas = tone_window(p, 1650.0, 0.0);
    const auto ref = tone_window(p, 1100.0, 0.0);
    golden::CycleResult result;
    for (int i = 0; i < 100; ++i)
        result = golden::process_window(meas, ref, filter, p);
    EXPECT_NEAR(static_cast<double>(result.cap.cap_pf_q4) / 16.0, 330.0, 5.0);
    const double expected_level = (330.0 - p.c_empty_pf) / (p.c_full_pf - p.c_empty_pf);
    EXPECT_NEAR(static_cast<double>(result.level.level_q15) / 32768.0,
                expected_level, 0.02);
}

}  // namespace
}  // namespace refpga::app
