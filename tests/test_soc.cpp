#include <gtest/gtest.h>

#include "refpga/common/rng.hpp"
#include "refpga/netlist/drc.hpp"
#include "refpga/netlist/stats.hpp"
#include "refpga/soc/assembler.hpp"
#include "refpga/soc/cpu.hpp"
#include "refpga/soc/fabric_macros.hpp"
#include "refpga/soc/isa.hpp"
#include "refpga/soc/memory.hpp"

namespace refpga::soc {
namespace {

// ---------------------------------------------------------------- isa

TEST(Isa, EncodeDecodeRoundTripRType) {
    Instruction in;
    in.op = Opcode::Add;
    in.rd = 5;
    in.ra = 10;
    in.rb = 31;
    const Instruction out = decode(encode(in));
    EXPECT_EQ(out.op, Opcode::Add);
    EXPECT_EQ(out.rd, 5);
    EXPECT_EQ(out.ra, 10);
    EXPECT_EQ(out.rb, 31);
}

TEST(Isa, EncodeDecodeRoundTripImmediate) {
    Instruction in;
    in.op = Opcode::Addi;
    in.rd = 1;
    in.ra = 2;
    in.imm = -1234;
    const Instruction out = decode(encode(in));
    EXPECT_EQ(out.imm, -1234);
}

TEST(Isa, MnemonicRoundTrip) {
    for (int i = 0; i < kOpcodeCount; ++i) {
        const auto op = static_cast<Opcode>(i);
        const auto parsed = parse_mnemonic(mnemonic(op));
        ASSERT_TRUE(parsed.has_value()) << mnemonic(op);
        EXPECT_EQ(*parsed, op);
    }
    EXPECT_FALSE(parse_mnemonic("nop").has_value());
}

// ---------------------------------------------------------------- disassembler

TEST(Disassembler, RendersCommonForms) {
    Instruction add;
    add.op = Opcode::Add;
    add.rd = 3;
    add.ra = 1;
    add.rb = 2;
    EXPECT_EQ(disassemble(encode(add)), "add  r3, r1, r2");

    Instruction addi;
    addi.op = Opcode::Addi;
    addi.rd = 5;
    addi.ra = 0;
    addi.imm = -7;
    EXPECT_EQ(disassemble(encode(addi)), "addi r5, r0, -7");

    Instruction halt;
    halt.op = Opcode::Halt;
    EXPECT_EQ(disassemble(encode(halt)), "halt");
}

TEST(Disassembler, BranchTargetsAreAbsolute) {
    Instruction br;
    br.op = Opcode::Br;
    br.imm = 8;
    EXPECT_EQ(disassemble(encode(br), 100), "br   112");
}

TEST(Disassembler, RoundTripsThroughAssembler) {
    // Property: assemble(disassemble(word)) == word for a sweep of forms.
    const std::vector<std::string> lines = {
        "add  r1, r2, r3", "sub  r4, r5, r6",  "mul  r7, r8, r9",
        "addi r1, r0, 42", "andi r2, r3, 255", "srai r4, r5, 3",
        "lw   r6, r7, 16", "sw   r8, r9, -4",  "lui  r10, 4660",
        "jr   r15",        "get  r1, 3",       "put  r2, 5",
        "halt",
    };
    for (const auto& line : lines) {
        const Program p = assemble(line + "\n");
        ASSERT_EQ(p.words.size(), 1u) << line;
        const std::uint32_t word = p.words.at(0);
        const Program p2 = assemble(disassemble(word) + "\n");
        EXPECT_EQ(p2.words.at(0), word) << line << " -> " << disassemble(word);
    }
}

TEST(Disassembler, FirmwareListingIsReassemblable) {
    // Disassemble the start of a real program and reassemble each line.
    const Program p = assemble(R"(
        addi r1, r0, 5
        addi r2, r0, 0
    loop:
        add  r2, r2, r1
        addi r1, r1, -1
        bne  r1, r0, loop
        halt
    )");
    for (const auto& [addr, word] : p.words) {
        const std::string line = disassemble(word, addr);
        // Re-assembling a branch needs its absolute target as a raw number;
        // place the statement at the same address so offsets match.
        const Program back = assemble("  .org " + std::to_string(addr) + "\n  " +
                                      line + "\n");
        EXPECT_EQ(back.words.at(addr), word) << line;
    }
}

// ---------------------------------------------------------------- assembler

TEST(Assembler, AssemblesSimpleProgram) {
    const Program p = assemble("start:\n  addi r1, r0, 7\n  halt\n");
    EXPECT_EQ(p.words.size(), 2u);
    EXPECT_EQ(p.labels.at("start"), 0u);
    EXPECT_EQ(p.size_bytes(), 8u);
}

TEST(Assembler, ForwardBranchResolves) {
    const Program p = assemble(R"(
        br done
        addi r1, r0, 1
    done:
        halt
    )");
    const Instruction br = decode(p.words.at(0));
    EXPECT_EQ(br.op, Opcode::Br);
    EXPECT_EQ(br.imm, 4);  // skip one instruction
}

TEST(Assembler, HiLoSplitValues) {
    const Program p = assemble("  lui r1, hi(2147614720)\n  ori r1, r1, lo(2147614720)\n  halt\n");
    const Instruction lui = decode(p.words.at(0));
    EXPECT_EQ(lui.imm & 0xFFFF, 0x8002);
}

TEST(Assembler, DirectivesWork) {
    const Program p = assemble(R"(
        .org 64
    data:
        .word 17, -3
        .space 8
    after:
        halt
    )");
    EXPECT_EQ(p.labels.at("data"), 64u);
    EXPECT_EQ(p.words.at(64), 17u);
    EXPECT_EQ(p.words.at(68), static_cast<std::uint32_t>(-3));
    EXPECT_EQ(p.labels.at("after"), 80u);
}

TEST(Assembler, CommentsAndBlankLinesIgnored) {
    const Program p = assemble("; full line comment\n\n  halt  # trailing\n");
    EXPECT_EQ(p.words.size(), 1u);
}

TEST(Assembler, ErrorsCarryLineNumbers) {
    try {
        (void)assemble("  halt\n  bogus r1, r2\n");
        FAIL() << "should throw";
    } catch (const ContractViolation& e) {
        EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
    }
}

TEST(Assembler, DuplicateLabelRejected) {
    EXPECT_THROW((void)assemble("a:\n halt\na:\n halt\n"), ContractViolation);
}

// ---------------------------------------------------------------- memory

TEST(Memory, RegionsAndLatencies) {
    MemorySystem mem;
    std::int64_t cycles = 0;
    mem.write_word(0x100, 42, cycles);
    EXPECT_EQ(mem.read_word(0x100, cycles), 42u);
    mem.write_word(kSramBase + 0x10, 7, cycles);
    EXPECT_EQ(mem.read_word(kSramBase + 0x10, cycles), 7u);
    // 2 LMB accesses @1 + 2 SRAM accesses @5.
    EXPECT_EQ(cycles, 2 * mem.config().lmb_latency + 2 * mem.config().sram_latency);
}

TEST(Memory, UartCollectsCharacters) {
    MemorySystem mem;
    std::int64_t cycles = 0;
    mem.write_word(kUartTxAddr, 'h', cycles);
    mem.write_word(kUartTxAddr, 'i', cycles);
    EXPECT_EQ(mem.uart_output(), "hi");
    EXPECT_EQ(mem.read_word(kUartStatusAddr, cycles), 1u);  // always ready
}

TEST(Memory, GpioReadback) {
    MemorySystem mem;
    std::int64_t cycles = 0;
    mem.write_word(kGpioAddr, 0xA5, cycles);
    EXPECT_EQ(mem.read_word(kGpioAddr, cycles), 0xA5u);
    EXPECT_EQ(mem.gpio(), 0xA5u);
}

TEST(Memory, FetchLatencyByRegion) {
    MemorySystem mem;
    EXPECT_EQ(mem.fetch_latency(0x0), mem.config().lmb_latency);
    EXPECT_EQ(mem.fetch_latency(kSramBase), mem.config().sram_latency);
}

TEST(Memory, MisalignedAccessRejected) {
    MemorySystem mem;
    std::int64_t cycles = 0;
    EXPECT_THROW((void)mem.read_word(0x101, cycles), ContractViolation);
}

// ---------------------------------------------------------------- cpu

struct Machine {
    MemorySystem mem;
    Cpu cpu{mem};

    explicit Machine(const std::string& source, std::uint32_t start = 0) {
        mem.load(assemble(source));
        cpu.reset(start);
    }

    CpuState run() { return cpu.run(1'000'000); }
};

TEST(Cpu, ArithmeticAndHalt) {
    Machine m(R"(
        addi r1, r0, 21
        add  r2, r1, r1
        sub  r3, r2, r1
        halt
    )");
    EXPECT_EQ(m.run(), CpuState::Halted);
    EXPECT_EQ(m.cpu.reg(2), 42u);
    EXPECT_EQ(m.cpu.reg(3), 21u);
}

TEST(Cpu, R0IsAlwaysZero) {
    Machine m("  addi r0, r0, 99\n  halt\n");
    m.run();
    EXPECT_EQ(m.cpu.reg(0), 0u);
}

TEST(Cpu, MulAndMulh) {
    Machine m(R"(
        addi r1, r0, -3
        addi r2, r0, 100
        mul  r3, r1, r2
        mulh r4, r1, r2
        halt
    )");
    m.run();
    EXPECT_EQ(static_cast<std::int32_t>(m.cpu.reg(3)), -300);
    EXPECT_EQ(m.cpu.reg(4), 0xFFFFFFFFu);  // sign extension of the high half
}

TEST(Cpu, ShiftsIncludingArithmetic) {
    Machine m(R"(
        addi r1, r0, -16
        srai r2, r1, 2
        srli r3, r1, 28
        slli r4, r1, 1
        halt
    )");
    m.run();
    EXPECT_EQ(static_cast<std::int32_t>(m.cpu.reg(2)), -4);
    EXPECT_EQ(m.cpu.reg(3), 0xFu);
    EXPECT_EQ(static_cast<std::int32_t>(m.cpu.reg(4)), -32);
}

TEST(Cpu, LoadStoreRoundTrip) {
    Machine m(R"(
        addi r1, r0, 1234
        sw   r1, r0, 256
        lw   r2, r0, 256
        halt
    )");
    m.run();
    EXPECT_EQ(m.cpu.reg(2), 1234u);
}

TEST(Cpu, LoopComputesTriangularNumber) {
    Machine m(R"(
        addi r1, r0, 0    ; sum
        addi r2, r0, 1    ; i
        addi r3, r0, 11   ; bound
    loop:
        add  r1, r1, r2
        addi r2, r2, 1
        bne  r2, r3, loop
        halt
    )");
    m.run();
    EXPECT_EQ(m.cpu.reg(1), 55u);
}

TEST(Cpu, SubroutineLinkAndReturn) {
    Machine m(R"(
        addi r1, r0, 5
        brl  double
        add  r4, r3, r0
        halt
    double:
        add  r3, r1, r1
        jr   r15
    )");
    m.run();
    EXPECT_EQ(m.cpu.reg(4), 10u);
}

TEST(Cpu, SignedVsUnsignedBranches) {
    Machine m(R"(
        addi r1, r0, -1
        addi r2, r0, 1
        addi r3, r0, 0
        addi r4, r0, 0
        blt  r1, r2, signed_taken
        addi r3, r0, 99
    signed_taken:
        bltu r1, r2, unsigned_taken
        addi r4, r0, 1    ; executed: 0xFFFFFFFF is not < 1 unsigned
    unsigned_taken:
        halt
    )");
    m.run();
    EXPECT_EQ(m.cpu.reg(3), 0u);
    EXPECT_EQ(m.cpu.reg(4), 1u);
}

TEST(Cpu, FslGetBlocksUntilDataArrives) {
    Machine m("  get r1, 0\n  halt\n");
    EXPECT_EQ(m.cpu.run(100), CpuState::BlockedOnFsl);
    m.cpu.fsl_to_cpu(0).write(77);
    EXPECT_EQ(m.run(), CpuState::Halted);
    EXPECT_EQ(m.cpu.reg(1), 77u);
}

TEST(Cpu, FslPutDeliversToHardwareSide) {
    Machine m("  addi r1, r0, 5\n  put r1, 2\n  halt\n");
    m.run();
    ASSERT_TRUE(m.cpu.fsl_from_cpu(2).can_read());
    EXPECT_EQ(m.cpu.fsl_from_cpu(2).read(), 5u);
}

TEST(Cpu, UartHelloFromProgram) {
    Machine m(R"(
        lui  r1, hi(3221225472)
        addi r2, r0, 72
        sw   r2, r1, 0
        addi r2, r0, 73
        sw   r2, r1, 0
        halt
    )");
    m.run();
    EXPECT_EQ(m.mem.uart_output(), "HI");
}

// The mechanism behind the paper's 7 ms software number: the same code is
// materially slower when fetched from external SRAM than from LMB BRAM.
TEST(Cpu, SramResidentCodeIsSlower) {
    const std::string body = R"(
        addi r1, r0, 0
        addi r2, r0, 200
    loop:
        addi r1, r1, 1
        bne  r1, r2, loop
        halt
    )";
    Machine fast(body, 0);
    fast.run();

    Machine slow("  .org 2147483648\n" + body, 0x80000000);
    slow.run();

    EXPECT_EQ(fast.cpu.reg(1), slow.cpu.reg(1));  // same result
    EXPECT_GT(slow.cpu.cycles(), 3 * fast.cpu.cycles());
}

TEST(Cpu, CycleCountsChargeLoadLatency) {
    Machine lmb("  lw r1, r0, 0\n  halt\n");
    lmb.run();
    // lw's imm16 cannot reach SRAM directly; use a register base.
    Machine sram2(R"(
        lui r2, hi(2147483648)
        lw  r1, r2, 0
        halt
    )");
    sram2.run();
    EXPECT_GT(sram2.cpu.cycles(), lmb.cpu.cycles());
}

// ------------------------------------------------- randomized ALU property

TEST(Cpu, RandomizedAluMatchesReference) {
    // Load random operands via lui/ori, apply every R-type ALU op, and
    // compare with native C++ arithmetic.
    Rng rng(2718);
    for (int trial = 0; trial < 24; ++trial) {
        const auto a = static_cast<std::uint32_t>(rng.next_u64());
        const auto b = static_cast<std::uint32_t>(rng.next_u64());
        std::string src;
        auto load = [&](const char* reg, std::uint32_t v) {
            src += std::string("  lui ") + reg + ", " + std::to_string(v >> 16) + "\n";
            src += std::string("  ori ") + reg + ", " + reg + ", " +
                   std::to_string(v & 0xFFFF) + "\n";
        };
        load("r1", a);
        load("r2", b);
        src += "  add r3, r1, r2\n  sub r4, r1, r2\n  mul r5, r1, r2\n";
        src += "  and r6, r1, r2\n  or r7, r1, r2\n  xor r8, r1, r2\n";
        src += "  sll r9, r1, r2\n  srl r10, r1, r2\n  sra r11, r1, r2\n";
        src += "  halt\n";
        Machine m(src);
        ASSERT_EQ(m.run(), CpuState::Halted);
        EXPECT_EQ(m.cpu.reg(3), a + b);
        EXPECT_EQ(m.cpu.reg(4), a - b);
        EXPECT_EQ(m.cpu.reg(5), a * b);
        EXPECT_EQ(m.cpu.reg(6), a & b);
        EXPECT_EQ(m.cpu.reg(7), a | b);
        EXPECT_EQ(m.cpu.reg(8), a ^ b);
        EXPECT_EQ(m.cpu.reg(9), a << (b & 31));
        EXPECT_EQ(m.cpu.reg(10), a >> (b & 31));
        EXPECT_EQ(m.cpu.reg(11),
                  static_cast<std::uint32_t>(static_cast<std::int32_t>(a) >>
                                             (b & 31)));
    }
}

// ---------------------------------------------------------------- fabric macros

TEST(FabricMacros, BlobHitsSliceTarget) {
    netlist::Netlist nl;
    const auto clk = nl.add_input_port("clk", 1)[0];
    netlist::Builder b(nl, clk);
    (void)make_logic_blob(b, 100, "blob");
    const auto stats = netlist::total_stats(nl);
    EXPECT_EQ(stats.slices(), 100u);
    EXPECT_TRUE(netlist::run_drc(nl).empty());
}

TEST(FabricMacros, StaticSoftIpBudgetsAddUp) {
    netlist::Netlist nl;
    const auto clk = nl.add_input_port("clk", 1)[0];
    netlist::Builder b(nl, clk);
    SoftIpBudgets budgets;
    emit_static_soft_ip(b, budgets);
    const auto stats = netlist::total_stats(nl);
    EXPECT_EQ(static_cast<int>(stats.slices()), budgets.total());
}

}  // namespace
}  // namespace refpga::soc
