// Bit-exactness tests: the hardware netlists must reproduce the golden
// models exactly, sample for sample.
#include <gtest/gtest.h>

#include <cmath>

#include "refpga/app/golden.hpp"
#include "refpga/app/hw_modules.hpp"
#include "refpga/app/tables.hpp"
#include "refpga/common/rng.hpp"
#include "refpga/netlist/drc.hpp"
#include "refpga/netlist/stats.hpp"
#include "refpga/sim/simulator.hpp"

namespace refpga::app {
namespace {

using netlist::Builder;
using netlist::Bus;
using netlist::Netlist;
using netlist::NetId;

AppParams params() { return AppParams{}; }

std::vector<std::int32_t> random_window(const AppParams& p, std::uint64_t seed) {
    Rng rng(seed);
    std::vector<std::int32_t> w(static_cast<std::size_t>(p.window));
    const std::int32_t max = (1 << (p.sample_bits - 1)) - 1;
    for (auto& s : w)
        s = static_cast<std::int32_t>(rng.next_below(static_cast<std::uint32_t>(2 * max))) -
            max;
    return w;
}

std::vector<std::int32_t> tone_window(const AppParams& p, double amp, double phi) {
    std::vector<std::int32_t> w(static_cast<std::size_t>(p.window));
    for (int n = 0; n < p.window; ++n)
        w[static_cast<std::size_t>(n)] = static_cast<std::int32_t>(
            std::lround(amp * std::sin(2.0 * M_PI * p.bin * n / p.window + phi)));
    return w;
}

// ---------------------------------------------------------------- sinus generator

TEST(HwSinusGen, MatchesModelBitForBit) {
    const AppParams p = params();
    Netlist nl;
    const NetId clk = nl.add_input_port("clk", 1)[0];
    Builder b(nl, clk);
    const auto tick = nl.add_input_port("tick", 1);
    const SinusGeneratorIo io = make_sinus_generator(b, tick[0], p);
    nl.add_output_port("code8", io.code8);
    nl.add_output_port("ds_bit", Bus{io.ds_bit});
    ASSERT_TRUE(netlist::run_drc(nl).empty());

    sim::Simulator simulator(nl);
    simulator.set_input("tick", 1);
    SinusGenModel model(p);
    for (int i = 0; i < 500; ++i) {
        const auto expected = model.step();
        EXPECT_EQ(simulator.get_port("code8"), expected.code8) << "cycle " << i;
        EXPECT_EQ(simulator.get_port("ds_bit"), expected.ds_bit ? 1u : 0u)
            << "cycle " << i;
        simulator.tick();
    }
}

TEST(HwSinusGen, ResourceFootprintNearFiftySlices) {
    // §4.1: "total resource utilization was restricted to ca. 50 slices".
    const AppParams p = params();
    Netlist nl;
    const NetId clk = nl.add_input_port("clk", 1)[0];
    Builder b(nl, clk);
    const auto tick = nl.add_input_port("tick", 1);
    (void)make_sinus_generator(b, tick[0], p);
    // Measured ~85 slices vs the paper's "ca. 50": our modulator carries
    // wider state registers; same order of magnitude (see EXPERIMENTS.md).
    const auto stats = netlist::total_stats(nl);
    EXPECT_GE(stats.slices(), 25u);
    EXPECT_LE(stats.slices(), 95u);
}

// ---------------------------------------------------------------- amp/phase

struct AmpPhaseHarness {
    Netlist nl;
    sim::Simulator* simulator = nullptr;

    AmpPhaseHarness() {
        const AppParams p = params();
        const NetId clk = nl.add_input_port("clk", 1)[0];
        Builder b(nl, clk);
        const Bus meas = nl.add_input_port("meas", p.sample_bits);
        const Bus ref = nl.add_input_port("ref", p.sample_bits);
        const Bus valid = nl.add_input_port("valid", 1);
        const Bus clear = nl.add_input_port("clear", 1);
        const Bus chan = nl.add_input_port("chan", 1);
        const AmpPhaseIo io =
            make_amp_phase(b, meas, ref, valid[0], clear[0], chan[0], params());
        nl.add_output_port("amp", io.amp);
        nl.add_output_port("phase", io.phase);
        nl.add_output_port("done", Bus{io.done});
    }

    struct Result {
        golden::ChannelResult meas;
        golden::ChannelResult ref;
    };

    Result run(const std::vector<std::int32_t>& meas,
               const std::vector<std::int32_t>& ref) {
        sim::Simulator s(nl);
        // Clear pulse with quiet inputs.
        s.set_input("meas", 0);
        s.set_input("ref", 0);
        s.set_input("valid", 0);
        s.set_input("clear", 1);
        s.tick();
        s.set_input("clear", 0);
        s.set_input("valid", 1);
        for (std::size_t i = 0; i < meas.size(); ++i) {
            s.set_input("meas", static_cast<std::uint64_t>(meas[i]) & 0xFFF);
            s.set_input("ref", static_cast<std::uint64_t>(ref[i]) & 0xFFF);
            s.tick();
        }
        s.set_input("valid", 0);
        EXPECT_EQ(s.get_port("done"), 1u);
        Result r;
        s.set_input("chan", 0);
        r.meas.amplitude = static_cast<std::uint32_t>(s.get_port("amp"));
        r.meas.phase = static_cast<std::uint32_t>(s.get_port("phase"));
        s.set_input("chan", 1);
        r.ref.amplitude = static_cast<std::uint32_t>(s.get_port("amp"));
        r.ref.phase = static_cast<std::uint32_t>(s.get_port("phase"));
        return r;
    }
};

TEST(HwAmpPhase, BitExactOnTone) {
    const AppParams p = params();
    const auto meas = tone_window(p, 1500.0, 0.4);
    const auto ref = tone_window(p, 900.0, -0.2);
    AmpPhaseHarness harness;
    const auto hw = harness.run(meas, ref);

    const auto acc = golden::accumulate_window(meas, ref, p);
    const auto gm = golden::amp_phase(acc.i_meas, acc.q_meas, p);
    const auto gr = golden::amp_phase(acc.i_ref, acc.q_ref, p);
    EXPECT_EQ(hw.meas.amplitude, gm.amplitude);
    EXPECT_EQ(hw.meas.phase, gm.phase);
    EXPECT_EQ(hw.ref.amplitude, gr.amplitude);
    EXPECT_EQ(hw.ref.phase, gr.phase);
}

class AmpPhaseRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AmpPhaseRandom, BitExactOnRandomWindows) {
    const AppParams p = params();
    const auto meas = random_window(p, GetParam());
    const auto ref = random_window(p, GetParam() + 1000);
    AmpPhaseHarness harness;
    const auto hw = harness.run(meas, ref);
    const auto acc = golden::accumulate_window(meas, ref, p);
    const auto gm = golden::amp_phase(acc.i_meas, acc.q_meas, p);
    const auto gr = golden::amp_phase(acc.i_ref, acc.q_ref, p);
    EXPECT_EQ(hw.meas.amplitude, gm.amplitude);
    EXPECT_EQ(hw.meas.phase, gm.phase);
    EXPECT_EQ(hw.ref.amplitude, gr.amplitude);
    EXPECT_EQ(hw.ref.phase, gr.phase);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AmpPhaseRandom, ::testing::Values(1, 2, 3, 4, 5));

TEST(HwAmpPhase, ClearRestartsWindow) {
    const AppParams p = params();
    const auto w1 = random_window(p, 77);
    const auto w2 = random_window(p, 88);
    AmpPhaseHarness harness;
    // Run one window, then clear and run another: second result must match a
    // fresh golden run of the second window only.
    sim::Simulator s(harness.nl);
    auto feed = [&](const std::vector<std::int32_t>& m) {
        s.set_input("meas", 0);
        s.set_input("ref", 0);
        s.set_input("valid", 0);
        s.set_input("clear", 1);
        s.tick();
        s.set_input("clear", 0);
        s.set_input("valid", 1);
        for (const auto v : m) {
            s.set_input("meas", static_cast<std::uint64_t>(v) & 0xFFF);
            s.set_input("ref", static_cast<std::uint64_t>(v) & 0xFFF);
            s.tick();
        }
        s.set_input("valid", 0);
    };
    feed(w1);
    feed(w2);
    s.set_input("chan", 0);
    const auto acc = golden::accumulate_window(w2, w2, p);
    const auto gm = golden::amp_phase(acc.i_meas, acc.q_meas, p);
    EXPECT_EQ(s.get_port("amp"), gm.amplitude);
    EXPECT_EQ(s.get_port("phase"), gm.phase);
}

TEST(HwAmpPhase, IsTheLargestModule) {
    // Table 1's shape: amp/phase dominates the reconfigurable modules.
    const AppParams p = params();
    Netlist nl;
    const NetId clk = nl.add_input_port("clk", 1)[0];
    Builder b(nl, clk);
    const Bus meas = nl.add_input_port("meas", p.sample_bits);
    const Bus ref = nl.add_input_port("ref", p.sample_bits);
    const Bus flags = nl.add_input_port("flags", 3);

    const auto amp_part = nl.add_partition("amp");
    nl.set_current_partition(amp_part);
    const AmpPhaseIo amp = make_amp_phase(b, meas, ref, flags[0], flags[1], flags[2], p);
    const auto cap_part = nl.add_partition("cap");
    nl.set_current_partition(cap_part);
    const CapacityIo cap = make_capacity(b, amp.amp, amp.phase, amp.amp, amp.phase, p);
    const auto filt_part = nl.add_partition("filt");
    nl.set_current_partition(filt_part);
    (void)make_filter(b, cap.cap_pf_q4, flags[0], p);

    const auto stats = netlist::partition_stats(nl);
    const auto amp_slices = stats[amp_part.value()].slices();
    EXPECT_GT(amp_slices, stats[cap_part.value()].slices());
    EXPECT_GT(stats[cap_part.value()].slices(), stats[filt_part.value()].slices());
}

// ---------------------------------------------------------------- capacity

struct CapacityHarness {
    Netlist nl;

    CapacityHarness() {
        const AppParams p = params();
        const NetId clk = nl.add_input_port("clk", 1)[0];
        Builder b(nl, clk);
        const Bus amp_m = nl.add_input_port("amp_m", 16);
        const Bus ph_m = nl.add_input_port("ph_m", p.angle_bits);
        const Bus amp_r = nl.add_input_port("amp_r", 16);
        const Bus ph_r = nl.add_input_port("ph_r", p.angle_bits);
        const CapacityIo io = make_capacity(b, amp_m, ph_m, amp_r, ph_r, p);
        nl.add_output_port("ratio", io.ratio_q12);
        nl.add_output_port("cap", io.cap_pf_q4);
    }

    golden::CapacityResult run(const golden::ChannelResult& m,
                               const golden::ChannelResult& r) {
        sim::Simulator s(nl);
        s.set_input("amp_m", m.amplitude);
        s.set_input("ph_m", m.phase);
        s.set_input("amp_r", r.amplitude);
        s.set_input("ph_r", r.phase);
        golden::CapacityResult out;
        out.ratio_q12 = static_cast<std::uint32_t>(s.get_port("ratio"));
        out.cap_pf_q4 = static_cast<std::uint32_t>(s.get_port("cap"));
        return out;
    }
};

class CapacityRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CapacityRandom, BitExactAgainstGolden) {
    const AppParams p = params();
    Rng rng(GetParam());
    CapacityHarness harness;
    for (int i = 0; i < 12; ++i) {
        golden::ChannelResult m{rng.next_below(40000), rng.next_below(65536)};
        golden::ChannelResult r{1 + rng.next_below(40000), rng.next_below(65536)};
        const auto hw = harness.run(m, r);
        const auto gold = golden::capacity(m, r, p);
        EXPECT_EQ(hw.ratio_q12, gold.ratio_q12) << "case " << i;
        EXPECT_EQ(hw.cap_pf_q4, gold.cap_pf_q4) << "case " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CapacityRandom, ::testing::Values(11, 22, 33));

TEST(HwCapacity, ZeroDivisorSaturatesLikeGolden) {
    const AppParams p = params();
    CapacityHarness harness;
    golden::ChannelResult m{5000, 0};
    golden::ChannelResult r{0, 0};
    const auto hw = harness.run(m, r);
    const auto gold = golden::capacity(m, r, p);
    EXPECT_EQ(hw.ratio_q12, gold.ratio_q12);
    EXPECT_EQ(hw.ratio_q12, 16383u);
}

// ---------------------------------------------------------------- filter

TEST(HwFilter, BitExactStreamAgainstGolden) {
    const AppParams p = params();
    Netlist nl;
    const NetId clk = nl.add_input_port("clk", 1)[0];
    Builder b(nl, clk);
    const Bus cap = nl.add_input_port("cap", 16);
    const Bus valid = nl.add_input_port("valid", 1);
    const FilterIo io = make_filter(b, cap, valid[0], p);
    nl.add_output_port("level", io.level_q15);
    nl.add_output_port("ah", Bus{io.alarm_high});
    nl.add_output_port("al", Bus{io.alarm_low});
    nl.add_output_port("ema", io.ema);

    sim::Simulator s(nl);
    s.set_input("valid", 1);
    golden::FilterState gold(p);
    Rng rng(321);
    for (int i = 0; i < 300; ++i) {
        const std::uint32_t sample = rng.next_below(10000);
        s.set_input("cap", sample);
        s.tick();
        const auto expected = gold.step(sample);
        // Hardware output is combinational after the state registers update.
        EXPECT_EQ(s.get_port("ema"), gold.ema()) << "step " << i;
        EXPECT_EQ(s.get_port("level"), expected.level_q15) << "step " << i;
        EXPECT_EQ(s.get_port("ah"), expected.alarm_high ? 1u : 0u) << "step " << i;
        EXPECT_EQ(s.get_port("al"), expected.alarm_low ? 1u : 0u) << "step " << i;
    }
}

// ---------------------------------------------------------------- hygiene

TEST(HwModules, AllModulesPassDrc) {
    const AppParams p = params();
    Netlist nl;
    const NetId clk = nl.add_input_port("clk", 1)[0];
    Builder b(nl, clk);
    const Bus meas = nl.add_input_port("meas", p.sample_bits);
    const Bus ref = nl.add_input_port("ref", p.sample_bits);
    const Bus flags = nl.add_input_port("flags", 3);
    const Bus tick = nl.add_input_port("tick", 1);
    (void)make_sinus_generator(b, tick[0], p);
    const AmpPhaseIo amp = make_amp_phase(b, meas, ref, flags[0], flags[1], flags[2], p);
    const CapacityIo cap = make_capacity(b, amp.amp, amp.phase, amp.amp, amp.phase, p);
    const FilterIo filt = make_filter(b, cap.cap_pf_q4, flags[0], p);
    nl.add_output_port("level", filt.level_q15);
    const auto issues = netlist::run_drc(nl);
    EXPECT_TRUE(issues.empty()) << (issues.empty() ? "" : issues[0].detail);
}

}  // namespace
}  // namespace refpga::app
