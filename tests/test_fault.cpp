// Fault-injection layer and the self-healing pipeline built on it:
// deterministic fault plans, hardened controller loads (verify/retry/fail),
// scrub-based detect -> repair -> recover, plausibility guard, software
// fallback, and availability accounting end to end through refpga::fleet.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "refpga/app/system.hpp"
#include "refpga/fabric/device.hpp"
#include "refpga/fault/fault.hpp"
#include "refpga/fleet/campaign.hpp"
#include "refpga/fleet/report.hpp"
#include "refpga/reconfig/controller.hpp"
#include "refpga/reconfig/scrubber.hpp"

using namespace refpga;
using app::MeasurementSystem;
using app::SystemOptions;
using app::SystemVariant;

namespace {

fault::FaultSpec armed_but_quiet() {
    // Arms the self-healing machinery (verify + guard) without scheduling
    // any fault in a realistic test horizon.
    fault::FaultSpec spec;
    spec.glitch_prob_per_cycle = 1e-12;
    return spec;
}

}  // namespace

// ---------------------------------------------------------------------------
// FaultPlan
// ---------------------------------------------------------------------------

TEST(FaultPlan, IsDeterministic) {
    fault::FaultSpec spec;
    spec.upset_rate_per_column_s = 0.3;
    spec.load_corruption_prob = 0.2;
    spec.flash_error_prob = 0.1;
    spec.glitch_prob_per_cycle = 0.5;

    fault::FaultPlan a(spec, 28, 42);
    fault::FaultPlan b(spec, 28, 42);
    const auto ua = a.upsets_until(5.0);
    const auto ub = b.upsets_until(5.0);
    ASSERT_EQ(ua.size(), ub.size());
    for (std::size_t i = 0; i < ua.size(); ++i) {
        EXPECT_DOUBLE_EQ(ua[i].at_s, ub[i].at_s);
        EXPECT_EQ(ua[i].column, ub[i].column);
    }
    for (int i = 0; i < 16; ++i) {
        const fault::LoadFault fa = a.next_load_fault();
        const fault::LoadFault fb = b.next_load_fault();
        EXPECT_EQ(fa.flash_error, fb.flash_error);
        EXPECT_EQ(fa.corrupt_transfer, fb.corrupt_transfer);
        const fault::Glitch ga = a.next_glitch();
        const fault::Glitch gb = b.next_glitch();
        EXPECT_EQ(ga.kind, gb.kind);
        EXPECT_EQ(ga.on_reference, gb.on_reference);
    }
}

TEST(FaultPlan, ZeroSpecInjectsNothing) {
    fault::FaultPlan plan(fault::FaultSpec{}, 28, 7);
    EXPECT_FALSE(fault::FaultSpec{}.any());
    EXPECT_TRUE(plan.upsets_until(1e9).empty());
    const fault::LoadFault load = plan.next_load_fault();
    EXPECT_FALSE(load.any());
    EXPECT_EQ(plan.next_glitch().kind, fault::GlitchKind::None);
}

TEST(FaultPlan, UpsetTimesAscendAndColumnsStayInRange) {
    fault::FaultSpec spec;
    spec.upset_rate_per_column_s = 1.0;
    fault::FaultPlan plan(spec, 12, 99);
    double last = 0.0;
    // Incremental queries must see every event exactly once, in order.
    std::size_t total = 0;
    for (int window = 1; window <= 10; ++window) {
        for (const fault::UpsetEvent& u : plan.upsets_until(window * 1.0)) {
            EXPECT_GE(u.at_s, last);
            EXPECT_LT(u.at_s, window * 1.0);
            EXPECT_GE(u.column, 0);
            EXPECT_LT(u.column, 12);
            last = u.at_s;
            ++total;
        }
    }
    // lambda = 12 upsets/s over 10 s: expect ~120, loosely bounded.
    EXPECT_GT(total, 60u);
    EXPECT_LT(total, 240u);
}

// ---------------------------------------------------------------------------
// Hardened controller loads
// ---------------------------------------------------------------------------

namespace {

struct ControllerRig {
    fabric::Device dev{fabric::PartName::XC3S400};
    reconfig::ConfigMemory memory{dev};
    reconfig::ReconfigController ctrl{dev, reconfig::icap_port()};

    explicit ControllerRig(reconfig::LoadPolicy policy = {}) {
        ctrl.set_load_policy(policy);
        ctrl.attach_memory(&memory);
        ctrl.add_slot("slot0", {20, 28, 0, dev.rows()});
        ctrl.register_module("slot0", "amp_phase");
        ctrl.register_module("slot0", "capacity");
    }
};

}  // namespace

TEST(HardenedLoad, VerifyRetryRecoversFromCorruptTransfer) {
    ControllerRig rig({.verify_after_write = true, .max_retries = 2});
    int calls = 0;
    rig.ctrl.set_load_fault_hook([&](const std::string&, const std::string&, int) {
        ++calls;
        fault::LoadFault f;
        f.corrupt_transfer = (calls == 1);  // only the first attempt corrupts
        return f;
    });

    const reconfig::ReconfigEvent ev = rig.ctrl.load("slot0", "amp_phase");
    EXPECT_EQ(ev.attempts, 2);
    EXPECT_FALSE(ev.failed);
    EXPECT_GT(ev.verify_s, 0.0);
    EXPECT_EQ(rig.ctrl.slot_health("slot0"), reconfig::SlotHealth::Healthy);
    EXPECT_EQ(rig.ctrl.resident_module("slot0"), "amp_phase");
    EXPECT_EQ(rig.ctrl.retry_count(), 1);
    // The memory landed clean: the retry was verified.
    EXPECT_EQ(rig.memory.corrupted_count(), 0);

    // Both attempts and both verifies are charged to the ledger.
    ControllerRig clean({.verify_after_write = true, .max_retries = 2});
    const reconfig::ReconfigEvent ref = clean.ctrl.load("slot0", "amp_phase");
    EXPECT_EQ(ref.attempts, 1);
    EXPECT_NEAR(ev.time_s, 2.0 * ref.time_s, 1e-12);
    EXPECT_NEAR(ev.energy_mj, 2.0 * ref.energy_mj, 1e-9);
}

TEST(HardenedLoad, ExhaustedRetryBudgetFailsSlotThenRecovers) {
    ControllerRig rig({.verify_after_write = true, .max_retries = 1});
    bool faulty = true;
    rig.ctrl.set_load_fault_hook([&](const std::string&, const std::string&, int) {
        fault::LoadFault f;
        f.flash_error = faulty;
        return f;
    });

    const reconfig::ReconfigEvent ev = rig.ctrl.load("slot0", "amp_phase");
    EXPECT_TRUE(ev.failed);
    EXPECT_EQ(ev.attempts, 2);  // first attempt + one retry
    EXPECT_GT(ev.time_s, 0.0);  // failed attempts still cost transfer time
    EXPECT_EQ(rig.ctrl.slot_health("slot0"), reconfig::SlotHealth::Failed);
    EXPECT_TRUE(rig.ctrl.resident_module("slot0").empty());
    EXPECT_EQ(rig.ctrl.failed_load_count(), 1);

    // The flash recovers; the next request reloads from scratch.
    faulty = false;
    const reconfig::ReconfigEvent again = rig.ctrl.load("slot0", "amp_phase");
    EXPECT_FALSE(again.failed);
    EXPECT_FALSE(again.skipped);
    EXPECT_EQ(rig.ctrl.slot_health("slot0"), reconfig::SlotHealth::Healthy);
    EXPECT_EQ(rig.ctrl.resident_module("slot0"), "amp_phase");
}

TEST(HardenedLoad, SkippedLoadsAccrueNothingRetriesAccrue) {
    ControllerRig rig({.verify_after_write = true, .max_retries = 2});
    const reconfig::ReconfigEvent first = rig.ctrl.load("slot0", "amp_phase");
    const double time_after_first = rig.ctrl.total_time_s();
    const double energy_after_first = rig.ctrl.total_energy_mj();

    // Re-requesting the resident module is free and changes no totals.
    const reconfig::ReconfigEvent skipped = rig.ctrl.load("slot0", "amp_phase");
    EXPECT_TRUE(skipped.skipped);
    EXPECT_EQ(skipped.attempts, 0);
    EXPECT_DOUBLE_EQ(skipped.time_s, 0.0);
    EXPECT_DOUBLE_EQ(skipped.energy_mj, 0.0);
    EXPECT_DOUBLE_EQ(rig.ctrl.total_time_s(), time_after_first);
    EXPECT_DOUBLE_EQ(rig.ctrl.total_energy_mj(), energy_after_first);

    // A retried load accrues strictly more than a clean one.
    int calls = 0;
    rig.ctrl.set_load_fault_hook([&](const std::string&, const std::string&, int) {
        fault::LoadFault f;
        f.corrupt_transfer = (++calls == 1);
        return f;
    });
    const reconfig::ReconfigEvent retried = rig.ctrl.load("slot0", "capacity");
    EXPECT_EQ(retried.attempts, 2);
    EXPECT_GT(retried.time_s, first.time_s);
    EXPECT_GT(retried.energy_mj, first.energy_mj);
    EXPECT_DOUBLE_EQ(rig.ctrl.total_time_s(), time_after_first + retried.time_s);
}

TEST(HardenedLoad, UnverifiedCorruptLandingIsCaughtByScrubber) {
    // Without verify-after-write a corrupted transfer goes unnoticed by the
    // controller — readback scrubbing is the safety net.
    ControllerRig rig({.verify_after_write = false, .max_retries = 0});
    rig.ctrl.set_load_fault_hook([](const std::string&, const std::string&, int) {
        fault::LoadFault f;
        f.corrupt_transfer = true;
        return f;
    });
    const reconfig::ReconfigEvent ev = rig.ctrl.load("slot0", "amp_phase");
    EXPECT_FALSE(ev.failed);  // nobody noticed
    EXPECT_EQ(rig.ctrl.slot_health("slot0"), reconfig::SlotHealth::Healthy);
    EXPECT_GT(rig.memory.corrupted_count(), 0);

    reconfig::Scrubber scrubber(rig.memory, reconfig::icap_port());
    const reconfig::ScrubReport scrub = scrubber.scan(0, rig.dev.cols());
    EXPECT_EQ(scrub.upsets_detected, 8);  // all eight slot columns landed wrong
    EXPECT_EQ(scrub.columns_repaired, 8);
    EXPECT_EQ(rig.memory.corrupted_count(), 0);
}

// ---------------------------------------------------------------------------
// Self-healing measurement system
// ---------------------------------------------------------------------------

TEST(SelfHealingSystem, DetectsRepairsAndRecoversFromUpsets) {
    SystemOptions options;
    options.variant = SystemVariant::ReconfiguredHw;
    options.port = reconfig::icap_port();  // full-device scrub pass per cycle
    options.fault.upset_rate_per_column_s = 0.5;
    MeasurementSystem system(options, 1234);
    system.set_true_level(0.5);

    bool saw_detect = false;
    bool saw_recovery_after_repair = false;
    bool repaired_before = false;
    for (int i = 0; i < 40; ++i) {
        const app::CycleReport report = system.run_cycle();
        if (report.upsets_detected > 0) saw_detect = true;
        if (repaired_before && !report.fabric_corrupted)
            saw_recovery_after_repair = true;
        if (report.columns_repaired > 0) repaired_before = true;
    }

    const fault::FaultStats& stats = system.fault_stats();
    EXPECT_GT(stats.upsets_injected, 0);
    EXPECT_GT(stats.upsets_detected, 0);
    EXPECT_GT(stats.columns_repaired, 0);
    EXPECT_TRUE(saw_detect);
    // The full detect -> repair -> recover sequence: after a repair, a later
    // cycle ran on clean fabric again.
    EXPECT_TRUE(saw_recovery_after_repair);
    EXPECT_GT(stats.mean_time_to_detect_s(), 0.0);
    EXPECT_GE(stats.mean_time_to_repair_s(), stats.mean_time_to_detect_s());
    EXPECT_LT(stats.availability(), 1.0);
    EXPECT_GT(stats.availability(), 0.0);
}

TEST(SelfHealingSystem, ScrubPhasesLandInTheIdleWindow) {
    SystemOptions options;
    options.variant = SystemVariant::ReconfiguredHw;  // clean run, scrub always on
    MeasurementSystem system(options, 7);
    system.set_true_level(0.4);
    const app::CycleReport report = system.run_cycle();

    bool has_scrub_phase = false;
    double t = 0.0;
    for (const app::CyclePhase& phase : report.phases) {
        EXPECT_NEAR(phase.start_s, t, 1e-12);  // schedule stays contiguous
        t += phase.duration_s;
        if (phase.name.find("scrub") != std::string::npos) has_scrub_phase = true;
    }
    EXPECT_TRUE(has_scrub_phase);
    EXPECT_GT(report.scrub_s, 0.0);
    // The donated idle share keeps the cycle inside the Fig. 4 period.
    EXPECT_LT(report.busy_s(), options.params.cycle_period_s);
}

TEST(SelfHealingSystem, CleanFaultLayerDoesNotPerturbResults) {
    SystemOptions options;
    options.variant = SystemVariant::ReconfiguredHw;
    MeasurementSystem baseline(options, 99);
    MeasurementSystem with_layer(options, 99);  // same all-zero spec
    for (int i = 0; i < 4; ++i) {
        baseline.set_true_level(0.3 + 0.1 * i);
        with_layer.set_true_level(0.3 + 0.1 * i);
        const app::CycleReport a = baseline.run_cycle();
        const app::CycleReport b = with_layer.run_cycle();
        EXPECT_EQ(a.result.level.level_q15, b.result.level.level_q15);
        EXPECT_EQ(a.result.cap.cap_pf_q4, b.result.cap.cap_pf_q4);
    }
    EXPECT_EQ(baseline.fault_stats().degraded_cycles, 0);
}

TEST(SelfHealingSystem, GlitchesTripThePlausibilityGuard) {
    SystemOptions options;
    options.variant = SystemVariant::MonolithicHw;
    options.fault.glitch_prob_per_cycle = 1.0;
    MeasurementSystem system(options, 5);
    system.set_true_level(0.5);
    for (int i = 0; i < 12; ++i) (void)system.run_cycle();

    const fault::FaultStats& stats = system.fault_stats();
    EXPECT_EQ(stats.glitches_injected, 12);
    EXPECT_GT(stats.rejected_cycles, 0);
    EXPECT_LT(stats.availability(), 1.0);
}

TEST(SelfHealingSystem, GuardYieldsToARealStepChange) {
    SystemOptions options;
    options.variant = SystemVariant::MonolithicHw;
    options.fault = armed_but_quiet();
    MeasurementSystem system(options, 3);

    system.set_true_level(0.2);
    for (int i = 0; i < 6; ++i) (void)system.run_cycle();
    EXPECT_EQ(system.fault_stats().rejected_cycles, 0);

    // A real step change looks implausible at first; after `patience`
    // consecutive rejections the guard accepts the new plateau.
    system.set_true_level(0.8);
    for (int i = 0; i < 10; ++i) (void)system.run_cycle();
    EXPECT_EQ(system.fault_stats().rejected_cycles, options.plausibility_patience);
    const app::CycleReport report = system.run_cycle();
    EXPECT_NEAR(static_cast<double>(report.result.cap.cap_pf_q4) / 16.0,
                options.params.c_empty_pf +
                    0.8 * (options.params.c_full_pf - options.params.c_empty_pf),
                30.0);
}

TEST(SelfHealingSystem, FailedSlotFallsBackToResidentSoftwarePath) {
    SystemOptions options;
    options.variant = SystemVariant::ReconfiguredHw;
    options.port = reconfig::icap_port();
    options.fault.flash_error_prob = 1.0;  // every fetch fails its CRC
    options.load_max_retries = 1;
    MeasurementSystem system(options, 11);
    system.set_true_level(0.6);

    const app::CycleReport report = system.run_cycle();
    EXPECT_TRUE(report.fallback);
    bool has_fallback_phase = false;
    for (const app::CyclePhase& phase : report.phases)
        if (phase.name.find("fallback") != std::string::npos) has_fallback_phase = true;
    EXPECT_TRUE(has_fallback_phase);
    // The cycle still delivers a plausible measurement via the software path.
    EXPECT_NEAR(report.capacitance_pf,
                options.params.c_empty_pf +
                    0.6 * (options.params.c_full_pf - options.params.c_empty_pf),
                40.0);

    for (int i = 0; i < 3; ++i) (void)system.run_cycle();
    const fault::FaultStats& stats = system.fault_stats();
    EXPECT_EQ(stats.fallback_cycles, 4);
    EXPECT_GT(stats.load_failures, 0);
    EXPECT_GT(stats.load_retries, 0);
    EXPECT_LT(stats.availability(), 1.0);
    EXPECT_EQ(system.controller().slot_health("slot0"),
              reconfig::SlotHealth::Failed);
}

// ---------------------------------------------------------------------------
// Fleet integration
// ---------------------------------------------------------------------------

namespace {

std::vector<fleet::Scenario> fault_sweep(int cycles) {
    fault::FaultSpec defaults;
    defaults.load_corruption_prob = 0.1;
    defaults.glitch_prob_per_cycle = 0.2;
    return fleet::SweepBuilder{}
        .variants({SystemVariant::MonolithicHw, SystemVariant::ReconfiguredHw})
        .ports({fleet::PortKind::Icap, fleet::PortKind::JcapAccelerated})
        .upset_rates({0.0, 0.2})
        .fault_defaults(defaults)
        .cycles(cycles)
        .campaign_seed(77)
        .build();
}

}  // namespace

TEST(FaultCampaign, ByteIdenticalAcrossThreadCounts) {
    const std::vector<fleet::Scenario> sweep = fault_sweep(6);
    std::string reference;
    for (const int threads : {1, 4, 8}) {
        const fleet::CampaignResult result =
            fleet::CampaignRunner(threads).run(sweep);
        const std::string json = fleet::CampaignReport::from(result).render_json();
        if (reference.empty())
            reference = json;
        else
            EXPECT_EQ(json, reference) << "threads=" << threads;
    }
    EXPECT_NE(reference.find("\"upset_rate\""), std::string::npos);
}

TEST(FaultCampaign, NonzeroUpsetRateDegradesAvailability) {
    const std::vector<fleet::Scenario> sweep = fault_sweep(10);
    const fleet::CampaignResult result =
        fleet::CampaignRunner(4).run(sweep);
    ASSERT_EQ(result.failure_count(), 0u);

    bool some_degraded = false;
    for (const fleet::ScenarioOutcome& o : result.outcomes) {
        EXPECT_GE(o.availability, 0.0);
        EXPECT_LE(o.availability, 1.0);
        if (o.scenario.fault.upset_rate_per_column_s > 0.0) {
            EXPECT_GT(o.upsets_injected, 0) << o.scenario.name;
            if (o.availability < 1.0) some_degraded = true;
        }
        EXPECT_GT(o.scrub_ms_per_cycle, 0.0) << o.scenario.name;
    }
    EXPECT_TRUE(some_degraded);

    // Availability and the fault tallies surface in both renderings.
    const fleet::CampaignReport report = fleet::CampaignReport::from(result);
    EXPECT_NE(report.render_text().find("avail"), std::string::npos);
    EXPECT_NE(report.render_json().find("\"availability\""), std::string::npos);
    EXPECT_NE(report.render_json().find("\"mttd_ms\""), std::string::npos);
}
