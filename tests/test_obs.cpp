// refpga::obs — metric registry, trace ring, scoped timers/spans, and the
// end-to-end wiring through MeasurementSystem and CampaignRunner, including
// the --metrics-json round trip (the obs JSON must parse and the campaign
// report must embed it verbatim).
#include <atomic>
#include <cctype>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "refpga/app/system.hpp"
#include "refpga/common/contracts.hpp"
#include "refpga/fleet/campaign.hpp"
#include "refpga/fleet/report.hpp"
#include "refpga/fleet/scenario.hpp"
#include "refpga/obs/obs.hpp"

namespace refpga::obs {
namespace {

// ---------------------------------------------------------------------------
// Minimal JSON validator (recursive descent): enough to prove the exported
// documents are well-formed without depending on an external parser.
// ---------------------------------------------------------------------------

class JsonChecker {
public:
    explicit JsonChecker(std::string_view text) : text_(text) {}

    [[nodiscard]] bool valid() {
        skip_ws();
        if (!value()) return false;
        skip_ws();
        return at_ == text_.size();
    }

private:
    std::string_view text_;
    std::size_t at_ = 0;

    [[nodiscard]] bool eof() const { return at_ >= text_.size(); }
    [[nodiscard]] char peek() const { return text_[at_]; }
    void skip_ws() {
        while (!eof() && std::isspace(static_cast<unsigned char>(peek()))) ++at_;
    }
    bool consume(char c) {
        if (eof() || peek() != c) return false;
        ++at_;
        return true;
    }
    bool literal(std::string_view word) {
        if (text_.substr(at_, word.size()) != word) return false;
        at_ += word.size();
        return true;
    }

    bool string() {
        if (!consume('"')) return false;
        while (!eof() && peek() != '"') {
            if (peek() == '\\') {
                ++at_;
                if (eof()) return false;
            }
            ++at_;
        }
        return consume('"');
    }

    bool number() {
        const std::size_t start = at_;
        if (!eof() && (peek() == '-' || peek() == '+')) ++at_;
        bool digits = false;
        const auto eat_digits = [&] {
            while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) {
                ++at_;
                digits = true;
            }
        };
        eat_digits();
        if (!eof() && peek() == '.') {
            ++at_;
            eat_digits();
        }
        if (digits && !eof() && (peek() == 'e' || peek() == 'E')) {
            ++at_;
            if (!eof() && (peek() == '-' || peek() == '+')) ++at_;
            eat_digits();
        }
        return digits && at_ > start;
    }

    bool value() {
        skip_ws();
        if (eof()) return false;
        switch (peek()) {
            case '{': return object();
            case '[': return array();
            case '"': return string();
            case 't': return literal("true");
            case 'f': return literal("false");
            case 'n': return literal("null");
            default: return number();
        }
    }

    bool object() {
        if (!consume('{')) return false;
        skip_ws();
        if (consume('}')) return true;
        for (;;) {
            skip_ws();
            if (!string()) return false;
            skip_ws();
            if (!consume(':')) return false;
            if (!value()) return false;
            skip_ws();
            if (consume('}')) return true;
            if (!consume(',')) return false;
        }
    }

    bool array() {
        if (!consume('[')) return false;
        skip_ws();
        if (consume(']')) return true;
        for (;;) {
            if (!value()) return false;
            skip_ws();
            if (consume(']')) return true;
            if (!consume(',')) return false;
        }
    }
};

bool json_ok(const std::string& text) { return JsonChecker(text).valid(); }

TEST(JsonChecker, AcceptsAndRejects) {
    EXPECT_TRUE(json_ok(R"({"a":[1,2.5,-3e4],"b":"x\"y","c":true,"d":null})"));
    EXPECT_FALSE(json_ok(R"({"a":1)"));
    EXPECT_FALSE(json_ok(R"({"a":})"));
    EXPECT_FALSE(json_ok("[1,]"));
    EXPECT_FALSE(json_ok("{} trailing"));
}

// ---------------------------------------------------------------------------
// MetricRegistry
// ---------------------------------------------------------------------------

TEST(MetricRegistry, CounterAddAndLookup) {
    MetricRegistry reg;
    const MetricId c = reg.counter("x.count_total");
    reg.add(c);
    reg.add(c, 2.5);
    EXPECT_DOUBLE_EQ(reg.value("x.count_total"), 3.5);
    EXPECT_EQ(reg.size(), 1u);
    EXPECT_TRUE(reg.find("x.count_total").valid());
    EXPECT_FALSE(reg.find("missing").valid());
    EXPECT_DOUBLE_EQ(reg.value("missing"), 0.0);
}

TEST(MetricRegistry, RegistrationIsIdempotentByName) {
    MetricRegistry reg;
    const MetricId a = reg.counter("same");
    const MetricId b = reg.counter("same");
    EXPECT_EQ(a.index, b.index);
    EXPECT_EQ(reg.size(), 1u);
}

TEST(MetricRegistry, KindClashThrows) {
    MetricRegistry reg;
    (void)reg.counter("metric");
    EXPECT_THROW((void)reg.gauge("metric"), ContractViolation);
    EXPECT_THROW((void)reg.histogram("metric", {1.0}), ContractViolation);
}

TEST(MetricRegistry, FullRegistryThrows) {
    MetricRegistry reg;
    for (std::size_t i = 0; i < MetricRegistry::kMaxMetrics; ++i)
        (void)reg.counter("m" + std::to_string(i));
    EXPECT_THROW((void)reg.counter("one-too-many"), ContractViolation);
}

TEST(MetricRegistry, GaugeSetOverwrites) {
    MetricRegistry reg;
    const MetricId g = reg.gauge("level");
    reg.set(g, 0.25);
    reg.set(g, 0.75);
    EXPECT_DOUBLE_EQ(reg.value("level"), 0.75);
}

TEST(MetricRegistry, HistogramBucketsSumAndOverflow) {
    MetricRegistry reg;
    const MetricId h = reg.histogram("lat", {1.0, 10.0, 100.0});
    reg.observe(h, 0.5);    // bucket 0
    reg.observe(h, 1.0);    // bucket 0 (le = inclusive)
    reg.observe(h, 7.0);    // bucket 1
    reg.observe(h, 1000.0); // overflow
    const MetricRegistry::Snapshot s = reg.snapshot(h);
    EXPECT_EQ(s.kind, MetricKind::Histogram);
    EXPECT_EQ(s.count, 4);
    EXPECT_DOUBLE_EQ(s.value, 1008.5);
    ASSERT_EQ(s.buckets.size(), 4u);
    EXPECT_EQ(s.buckets[0], 2);
    EXPECT_EQ(s.buckets[1], 1);
    EXPECT_EQ(s.buckets[2], 0);
    EXPECT_EQ(s.buckets[3], 1);
}

TEST(MetricRegistry, HistogramBoundsMustStrictlyIncrease) {
    MetricRegistry reg;
    EXPECT_THROW((void)reg.histogram("bad", {1.0, 1.0}), ContractViolation);
    EXPECT_THROW((void)reg.histogram("bad2", {2.0, 1.0}), ContractViolation);
}

TEST(MetricRegistry, DisabledRecordingIsANoOp) {
    MetricRegistry reg(/*enabled=*/false);
    const MetricId c = reg.counter("c");  // registration still works
    const MetricId h = reg.histogram("h", {1.0});
    reg.add(c);
    reg.observe(h, 0.5);
    EXPECT_DOUBLE_EQ(reg.value("c"), 0.0);
    EXPECT_EQ(reg.snapshot(h).count, 0);

    reg.set_enabled(true);
    reg.add(c);
    EXPECT_DOUBLE_EQ(reg.value("c"), 1.0);
}

TEST(MetricRegistry, InvalidIdIsIgnored) {
    MetricRegistry reg;
    reg.add(MetricId{});  // must not throw or crash
    reg.observe(MetricId{}, 1.0);
}

TEST(MetricRegistry, RendersAreWellFormed) {
    MetricRegistry reg;
    reg.add(reg.counter("a.count_total"), 3);
    reg.set(reg.gauge("b.gauge"), 1.5);
    reg.observe(reg.histogram("c.seconds", {0.1, 1.0}), 0.05);

    const std::string text = reg.render_text();
    EXPECT_NE(text.find("counter a.count_total 3"), std::string::npos);
    EXPECT_NE(text.find("gauge b.gauge 1.5"), std::string::npos);
    EXPECT_NE(text.find("histogram c.seconds count=1"), std::string::npos);

    const std::string json = reg.render_json();
    EXPECT_TRUE(json_ok(json)) << json;
    EXPECT_NE(json.find("\"name\":\"a.count_total\""), std::string::npos);
    EXPECT_NE(json.find("\"buckets\":[1,0,0]"), std::string::npos);

    const std::string prom = reg.render_prometheus();
    EXPECT_NE(prom.find("# TYPE a_count_total counter"), std::string::npos);
    EXPECT_NE(prom.find("a_count_total 3"), std::string::npos);
    EXPECT_NE(prom.find("c_seconds_bucket{le=\"+Inf\"} 1"), std::string::npos);
    EXPECT_NE(prom.find("c_seconds_count 1"), std::string::npos);
}

TEST(MetricRegistry, ConcurrentAddsAreExact) {
    MetricRegistry reg;
    const MetricId c = reg.counter("contended");
    constexpr int kThreads = 8;
    constexpr int kAdds = 10'000;
    std::vector<std::thread> workers;
    workers.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t)
        workers.emplace_back([&reg, c] {
            for (int i = 0; i < kAdds; ++i) reg.add(c);
        });
    for (std::thread& w : workers) w.join();
    EXPECT_DOUBLE_EQ(reg.value("contended"), kThreads * kAdds);
}

TEST(MetricRegistry, ConcurrentRegistrationYieldsOneSlot) {
    MetricRegistry reg;
    constexpr int kThreads = 8;
    std::vector<std::uint32_t> ids(kThreads);
    std::vector<std::thread> workers;
    workers.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t)
        workers.emplace_back([&reg, &ids, t] {
            const MetricId id = reg.counter("shared.name");
            reg.add(id);
            ids[static_cast<std::size_t>(t)] = id.index;
        });
    for (std::thread& w : workers) w.join();
    for (const std::uint32_t id : ids) EXPECT_EQ(id, ids[0]);
    EXPECT_EQ(reg.size(), 1u);
    EXPECT_DOUBLE_EQ(reg.value("shared.name"), kThreads);
}

// ---------------------------------------------------------------------------
// ScopedTimer / TraceRing / ScopedSpan
// ---------------------------------------------------------------------------

TEST(ScopedTimer, ObservesExactlyOnce) {
    MetricRegistry reg;
    const MetricId h = reg.histogram("t.seconds", {1.0});
    {
        ScopedTimer timer(&reg, h);
        const double elapsed = timer.stop();
        EXPECT_GE(elapsed, 0.0);
        EXPECT_DOUBLE_EQ(timer.stop(), 0.0);  // idempotent
    }
    EXPECT_EQ(reg.snapshot(h).count, 1);
}

TEST(ScopedTimer, InertWhenDisabledOrNull) {
    MetricRegistry reg(/*enabled=*/false);
    const MetricId h = reg.histogram("t.seconds", {1.0});
    { ScopedTimer timer(&reg, h); }
    { ScopedTimer timer(nullptr, h); }
    { ScopedTimer timer; }
    reg.set_enabled(true);
    EXPECT_EQ(reg.snapshot(h).count, 0);
}

TEST(TraceRing, BoundedWithDropCount) {
    TraceRing ring(4);
    const std::uint32_t name = ring.intern("ev");
    EXPECT_EQ(ring.intern("ev"), name);  // idempotent interning
    for (std::uint64_t i = 0; i < 7; ++i) ring.push(name, i * 10, 1);
    EXPECT_EQ(ring.pushed(), 7u);
    EXPECT_EQ(ring.dropped(), 3u);
    const std::vector<TraceEvent> events = ring.snapshot();
    ASSERT_EQ(events.size(), 4u);
    for (std::size_t i = 0; i < events.size(); ++i) {
        EXPECT_EQ(events[i].seq, 3 + i);  // oldest retained first
        EXPECT_EQ(ring.name(events[i].name), "ev");
    }
}

TEST(TraceRing, RenderJsonIsWellFormed) {
    TraceRing ring(8);
    ring.push(ring.intern("a\"quoted\""), 0, 5);
    EXPECT_TRUE(json_ok(ring.render_json())) << ring.render_json();
}

TEST(ScopedSpan, RecordsTraceAndHistogram) {
    Recorder rec;
    const std::uint32_t name = rec.trace().intern("phase");
    const MetricId h = rec.metrics().histogram("phase.seconds", {1.0});
    {
        ScopedSpan span(&rec, name, h);
    }
    EXPECT_EQ(rec.trace().pushed(), 1u);
    EXPECT_EQ(rec.metrics().snapshot(h).count, 1);
    const TraceEvent ev = rec.trace().snapshot().at(0);
    EXPECT_EQ(rec.trace().name(ev.name), "phase");
}

TEST(ScopedSpan, InertWhenRecorderDisabled) {
    Recorder rec(/*enabled=*/false);
    const std::uint32_t name = rec.trace().intern("phase");
    { ScopedSpan span(&rec, name); }
    { ScopedSpan span(nullptr, name); }
    EXPECT_EQ(rec.trace().pushed(), 0u);
}

TEST(Recorder, RenderJsonIsWellFormed) {
    Recorder rec;
    rec.metrics().add(rec.metrics().counter("k"), 2);
    { ScopedSpan span(&rec, rec.trace().intern("s")); }
    const std::string json = rec.render_json();
    EXPECT_TRUE(json_ok(json)) << json;
    EXPECT_NE(json.find("\"metrics\":["), std::string::npos);
    EXPECT_NE(json.find("\"trace\":{"), std::string::npos);
}

// ---------------------------------------------------------------------------
// End-to-end: MeasurementSystem wiring
// ---------------------------------------------------------------------------

TEST(SystemObs, RunCycleRecordsTheTaxonomy) {
    Recorder rec;
    app::SystemOptions options;
    options.recorder = &rec;
    app::MeasurementSystem system(options, 11);
    system.set_true_level(0.5);
    for (int c = 0; c < 3; ++c) (void)system.run_cycle();

    const MetricRegistry& m = rec.metrics();
    EXPECT_DOUBLE_EQ(m.value("cycle.count_total"), 3.0);
    // ReconfiguredHw loads amp_phase -> capacity -> filter each cycle; the
    // slot never holds the next module already, so nothing is skipped.
    EXPECT_DOUBLE_EQ(m.value("reconfig.loads_total"), 9.0);
    EXPECT_DOUBLE_EQ(m.value("reconfig.loads_skipped_total"), 0.0);
    EXPECT_GT(m.value("reconfig.bits_written_total"), 0.0);
    EXPECT_GT(m.value("frontend.ticks_total"), 0.0);
    EXPECT_GT(m.value("frontend.pcm_pairs_total"), 0.0);
    EXPECT_GT(m.value("cycle.model_sampling_seconds_total"), 0.0);
    EXPECT_GT(m.value("cycle.model_reconfig_seconds_total"), 0.0);
    // Wall-clock histograms: one cycle span and one sample span per cycle,
    // one module-swap span per load.
    EXPECT_EQ(m.snapshot(m.find("cycle.wall_seconds")).count, 3);
    EXPECT_EQ(m.snapshot(m.find("cycle.sample_wall_seconds")).count, 3);
    EXPECT_EQ(m.snapshot(m.find("cycle.module_swap_wall_seconds")).count, 9);
    EXPECT_GE(rec.trace().pushed(), 3u * 4u);
}

TEST(SystemObs, DisabledRecorderLeavesMetricsEmptyAndResultsIdentical) {
    Recorder disabled(/*enabled=*/false);
    app::SystemOptions with;
    with.recorder = &disabled;
    app::SystemOptions without;

    app::MeasurementSystem a(with, 11);
    app::MeasurementSystem b(without, 11);
    a.set_true_level(0.5);
    b.set_true_level(0.5);
    for (int c = 0; c < 2; ++c) {
        const app::CycleReport ra = a.run_cycle();
        const app::CycleReport rb = b.run_cycle();
        EXPECT_DOUBLE_EQ(ra.level, rb.level);
        EXPECT_DOUBLE_EQ(ra.capacitance_pf, rb.capacitance_pf);
    }
    EXPECT_DOUBLE_EQ(disabled.metrics().value("cycle.count_total"), 0.0);
    EXPECT_EQ(disabled.trace().pushed(), 0u);
}

// ---------------------------------------------------------------------------
// End-to-end: campaign wiring and the --metrics-json round trip
// ---------------------------------------------------------------------------

std::vector<fleet::Scenario> small_sweep(int cycles) {
    return fleet::SweepBuilder{}
        .variants({app::SystemVariant::ReconfiguredHw})
        .parts({fabric::PartName::XC3S400})
        .ports({fleet::PortKind::Jcap})
        .noise_levels({1e-3, 5e-3})
        .cycles(cycles)
        .campaign_seed(77)
        .build();
}

TEST(CampaignObs, RecordsPerScenarioMetricsAcrossThreads) {
    const std::vector<fleet::Scenario> sweep = small_sweep(2);
    Recorder rec;
    fleet::CampaignOptions options(2);
    options.recorder = &rec;
    const fleet::CampaignResult result = fleet::CampaignRunner(options).run(sweep);
    EXPECT_EQ(result.failure_count(), 0u);

    const MetricRegistry& m = rec.metrics();
    EXPECT_DOUBLE_EQ(m.value("campaign.scenarios_total"),
                     static_cast<double>(sweep.size()));
    EXPECT_DOUBLE_EQ(m.value("campaign.scenario_failures_total"), 0.0);
    EXPECT_EQ(m.snapshot(m.find("campaign.scenario_wall_seconds")).count,
              static_cast<std::int64_t>(sweep.size()));
    // The recorder propagated into each scenario's system.
    EXPECT_DOUBLE_EQ(m.value("cycle.count_total"),
                     static_cast<double>(sweep.size()) * 2.0);
}

TEST(CampaignObs, FailureCounterTracksFailedScenarios) {
    std::vector<fleet::Scenario> sweep = small_sweep(2);
    sweep[0].cycles = 0;  // rejected by run_one's contract check
    Recorder rec;
    fleet::CampaignOptions options(1);
    options.recorder = &rec;
    const fleet::CampaignResult result = fleet::CampaignRunner(options).run(sweep);
    EXPECT_EQ(result.failure_count(), 1u);
    EXPECT_DOUBLE_EQ(rec.metrics().value("campaign.scenario_failures_total"), 1.0);
    EXPECT_DOUBLE_EQ(rec.metrics().value("campaign.scenarios_total"), 2.0);
}

TEST(CampaignObs, OutcomesIdenticalWithAndWithoutRecorder) {
    const std::vector<fleet::Scenario> sweep = small_sweep(2);
    Recorder rec;
    fleet::CampaignOptions with(2);
    with.recorder = &rec;
    const fleet::CampaignResult ra = fleet::CampaignRunner(with).run(sweep);
    const fleet::CampaignResult rb =
        fleet::CampaignRunner(fleet::CampaignOptions(1)).run(sweep);
    // The base report is a pure function of the outcomes, so byte-comparing
    // the renderings compares every reported fact at once.
    EXPECT_EQ(fleet::CampaignReport::from(ra).render_json(),
              fleet::CampaignReport::from(rb).render_json());
}

TEST(CampaignObs, MetricsJsonRoundTripsThroughTheReport) {
    const std::vector<fleet::Scenario> sweep = small_sweep(2);
    Recorder rec;
    fleet::CampaignOptions options(2);
    options.recorder = &rec;
    const fleet::CampaignResult result = fleet::CampaignRunner(options).run(sweep);

    const std::string obs_json = rec.render_json();
    ASSERT_TRUE(json_ok(obs_json)) << obs_json;
    EXPECT_NE(obs_json.find("\"name\":\"campaign.scenarios_total\""),
              std::string::npos);
    EXPECT_NE(obs_json.find("\"name\":\"cycle.count_total\""), std::string::npos);

    fleet::CampaignReport report = fleet::CampaignReport::from(result);
    const std::string plain = report.render_json();
    EXPECT_TRUE(json_ok(plain)) << plain;
    EXPECT_EQ(plain.find("\"observability\""), std::string::npos);

    report.attach_metrics_json(obs_json);
    const std::string embedded = report.render_json();
    EXPECT_TRUE(json_ok(embedded)) << embedded;
    // The obs document is embedded verbatim under "observability".
    EXPECT_NE(embedded.find("\"observability\":" + obs_json), std::string::npos);

    report.attach_metrics_json("");
    EXPECT_EQ(report.render_json(), plain);
}

}  // namespace
}  // namespace refpga::obs
