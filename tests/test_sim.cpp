#include <gtest/gtest.h>

#include <sstream>

#include "refpga/common/rng.hpp"

#include "refpga/netlist/builder.hpp"
#include "refpga/sim/activity.hpp"
#include "refpga/sim/event_sim.hpp"
#include "refpga/sim/simulator.hpp"
#include "refpga/sim/vcd.hpp"

namespace refpga::sim {
namespace {

using netlist::Builder;
using netlist::Bus;
using netlist::Netlist;
using netlist::NetId;

struct Design {
    Netlist nl;
    NetId clk;
};

Design make_design() {
    Design d;
    d.clk = d.nl.add_input_port("clk", 1)[0];
    return d;
}

// ---------------------------------------------------------------- combinational

TEST(Simulator, EvaluatesLutTruthTable) {
    Design d = make_design();
    Builder b(d.nl, d.clk);
    const Bus a = d.nl.add_input_port("a", 2);
    d.nl.add_output_port("o", Bus{b.and_(a[0], a[1])});
    Simulator sim(d.nl);
    for (std::uint64_t v = 0; v < 4; ++v) {
        sim.set_input("a", v);
        EXPECT_EQ(sim.get_port("o"), v == 3 ? 1u : 0u) << v;
    }
}

TEST(Simulator, AdderMatchesArithmetic) {
    Design d = make_design();
    Builder b(d.nl, d.clk);
    const Bus a = d.nl.add_input_port("a", 8);
    const Bus x = d.nl.add_input_port("x", 8);
    d.nl.add_output_port("sum", b.add(a, x, true));
    Simulator sim(d.nl);
    for (const auto& [av, xv] :
         std::initializer_list<std::pair<unsigned, unsigned>>{
             {3u, 5u}, {200u, 100u}, {255u, 255u}, {0u, 0u}}) {
        sim.set_input("a", av);
        sim.set_input("x", xv);
        EXPECT_EQ(sim.get_port("sum"), (av + xv) & 0x1FFu);
    }
}

TEST(Simulator, SubMatchesTwosComplement) {
    Design d = make_design();
    Builder b(d.nl, d.clk);
    const Bus a = d.nl.add_input_port("a", 8);
    const Bus x = d.nl.add_input_port("x", 8);
    d.nl.add_output_port("diff", b.sub(a, x));
    Simulator sim(d.nl);
    sim.set_input("a", 10);
    sim.set_input("x", 3);
    EXPECT_EQ(sim.get_port("diff"), 7u);
    sim.set_input("x", 20);
    EXPECT_EQ(sim.get_port("diff"), (10u - 20u) & 0xFFu);
}

TEST(Simulator, AddSubSelectable) {
    Design d = make_design();
    Builder b(d.nl, d.clk);
    const Bus a = d.nl.add_input_port("a", 6);
    const Bus x = d.nl.add_input_port("x", 6);
    const Bus sel = d.nl.add_input_port("sel", 1);
    d.nl.add_output_port("y", b.addsub(a, x, sel[0]));
    Simulator sim(d.nl);
    sim.set_input("a", 20);
    sim.set_input("x", 7);
    sim.set_input("sel", 0);
    EXPECT_EQ(sim.get_port("y"), 27u);
    sim.set_input("sel", 1);
    EXPECT_EQ(sim.get_port("y"), 13u);
}

TEST(Simulator, ComparatorsBehave) {
    Design d = make_design();
    Builder b(d.nl, d.clk);
    const Bus a = d.nl.add_input_port("a", 4);
    const Bus x = d.nl.add_input_port("x", 4);
    d.nl.add_output_port("eq", Bus{b.eq(a, x)});
    d.nl.add_output_port("ltu", Bus{b.lt_unsigned(a, x)});
    d.nl.add_output_port("lts", Bus{b.lt_signed(a, x)});
    Simulator sim(d.nl);
    auto check = [&](std::uint64_t av, std::uint64_t xv, bool eq, bool ltu, bool lts) {
        sim.set_input("a", av);
        sim.set_input("x", xv);
        EXPECT_EQ(sim.get_port("eq"), eq ? 1u : 0u) << av << " vs " << xv;
        EXPECT_EQ(sim.get_port("ltu"), ltu ? 1u : 0u) << av << " vs " << xv;
        EXPECT_EQ(sim.get_port("lts"), lts ? 1u : 0u) << av << " vs " << xv;
    };
    check(3, 3, true, false, false);
    check(2, 9, false, true, false);   // 9 is -7 signed: 2 < -7 is false
    check(15, 1, false, false, true);  // -1 < 1 signed
    check(8, 7, false, false, true);   // -8 < 7 signed
}

TEST(Simulator, Mult18SignedProduct) {
    Design d = make_design();
    Builder b(d.nl, d.clk);
    const Bus a = d.nl.add_input_port("a", 8);
    const Bus x = d.nl.add_input_port("x", 8);
    d.nl.add_output_port("p", b.mul_mult18(a, x, 16, 0));
    Simulator sim(d.nl);
    auto run = [&](std::int32_t av, std::int32_t xv) {
        sim.set_input("a", static_cast<std::uint64_t>(av) & 0xFF);
        sim.set_input("x", static_cast<std::uint64_t>(xv) & 0xFF);
        return static_cast<std::int16_t>(sim.get_port("p"));
    };
    EXPECT_EQ(run(7, 9), 63);
    EXPECT_EQ(run(-5, 11), -55);
    EXPECT_EQ(run(-12, -12), 144);
}

TEST(Simulator, RomLutContents) {
    Design d = make_design();
    Builder b(d.nl, d.clk);
    const Bus addr = d.nl.add_input_port("addr", 6);
    std::vector<std::uint32_t> contents(64);
    for (std::uint32_t i = 0; i < 64; ++i) contents[i] = (i * 37u + 11u) & 0xFFu;
    d.nl.add_output_port("data", b.rom_lut(addr, contents, 8));
    Simulator sim(d.nl);
    for (std::uint32_t i = 0; i < 64; ++i) {
        sim.set_input("addr", i);
        EXPECT_EQ(sim.get_port("data"), contents[i]) << i;
    }
}

// ---------------------------------------------------------------- sequential

TEST(Simulator, CounterCounts) {
    Design d = make_design();
    Builder b(d.nl, d.clk);
    d.nl.add_output_port("q", b.counter(8));
    Simulator sim(d.nl);
    EXPECT_EQ(sim.get_port("q"), 0u);
    sim.run(5);
    EXPECT_EQ(sim.get_port("q"), 5u);
    sim.run(251);
    EXPECT_EQ(sim.get_port("q"), 0u);  // wraps at 256
}

TEST(Simulator, ClockEnableGatesCounter) {
    Design d = make_design();
    Builder b(d.nl, d.clk);
    const Bus ce = d.nl.add_input_port("ce", 1);
    d.nl.add_output_port("q", b.counter(4, ce[0]));
    Simulator sim(d.nl);
    sim.set_input("ce", 0);
    sim.run(10);
    EXPECT_EQ(sim.get_port("q"), 0u);
    sim.set_input("ce", 1);
    sim.run(3);
    EXPECT_EQ(sim.get_port("q"), 3u);
}

TEST(Simulator, RegisterDelaysOneCycle) {
    Design d = make_design();
    Builder b(d.nl, d.clk);
    const Bus a = d.nl.add_input_port("a", 4);
    d.nl.add_output_port("q", b.reg(a));
    Simulator sim(d.nl);
    sim.set_input("a", 9);
    EXPECT_EQ(sim.get_port("q"), 0u);
    sim.tick();
    EXPECT_EQ(sim.get_port("q"), 9u);
}

TEST(Simulator, BramRomSynchronousRead) {
    Design d = make_design();
    Builder b(d.nl, d.clk);
    const Bus addr = d.nl.add_input_port("addr", 5);
    std::vector<std::uint32_t> contents;
    for (std::uint32_t i = 0; i < 32; ++i) contents.push_back(i * 3);
    d.nl.add_output_port("data", b.rom_bram(addr, contents, 8));
    Simulator sim(d.nl);
    sim.set_input("addr", 7);
    sim.tick();
    EXPECT_EQ(sim.get_port("data"), 21u);
    sim.set_input("addr", 31);
    EXPECT_EQ(sim.get_port("data"), 21u);  // not yet clocked
    sim.tick();
    EXPECT_EQ(sim.get_port("data"), 93u);
}

TEST(Simulator, BramWritePort) {
    Design d = make_design();
    const NetId clk = d.clk;
    const auto addr = d.nl.add_input_port("addr", 4);
    const auto we = d.nl.add_input_port("we", 1);
    const auto wdata = d.nl.add_input_port("wdata", 8);
    netlist::BramConfig cfg;
    cfg.addr_bits = 4;
    cfg.data_bits = 8;
    cfg.writable = true;
    const auto out = d.nl.add_bram(cfg, addr, clk, we[0], wdata, "ram");
    d.nl.add_output_port("data", out);
    Simulator sim(d.nl);
    sim.set_input("addr", 5);
    sim.set_input("we", 1);
    sim.set_input("wdata", 0xAB);
    sim.tick();  // write-first: read sees the new value
    EXPECT_EQ(sim.get_port("data"), 0xABu);
    sim.set_input("we", 0);
    sim.tick();
    EXPECT_EQ(sim.get_port("data"), 0xABu);
}

// ---------------------------------------------------------------- activity/VCD

TEST(Activity, ToggleRateFromSimulation) {
    Design d = make_design();
    Builder b(d.nl, d.clk);
    const Bus q = b.counter(4);
    d.nl.add_output_port("q", q);
    Simulator sim(d.nl);
    sim.run(64);
    const ActivityMap map = activity_from_simulation(sim, 1e6);  // 1 MHz clock
    // Counter bit 0 toggles every cycle: rate == clock rate.
    EXPECT_NEAR(map.rate_hz(q[0]), 1e6, 1e4);
    // Bit 3 toggles every 8 cycles.
    EXPECT_NEAR(map.rate_hz(q[3]), 1e6 / 8.0, 2e4);
}

TEST(Activity, BusiestOrdersByRate) {
    ActivityMap map(3);
    map.set_rate(NetId{0}, 10.0);
    map.set_rate(NetId{1}, 30.0);
    map.set_rate(NetId{2}, 20.0);
    const auto top = map.busiest(2);
    ASSERT_EQ(top.size(), 2u);
    EXPECT_EQ(top[0], NetId{1});
    EXPECT_EQ(top[1], NetId{2});
}

TEST(Vcd, WriteParseRoundTrip) {
    Design d = make_design();
    Builder b(d.nl, d.clk);
    const Bus q = b.counter(2);
    d.nl.add_output_port("q", q);
    Simulator sim(d.nl);

    std::ostringstream os;
    VcdWriter writer(os, sim, {q[0], q[1]});
    writer.sample(0);
    for (int t = 1; t <= 8; ++t) {
        sim.tick();
        writer.sample(t * 1000);
    }

    std::istringstream is(os.str());
    const VcdActivity activity = parse_vcd(is);
    EXPECT_EQ(activity.duration_ps, 8000);
    // q0 toggles every cycle: 8 transitions over 8 samples.
    const auto& q0_name = d.nl.net(q[0]).name;
    const auto& q1_name = d.nl.net(q[1]).name;
    EXPECT_EQ(activity.toggles.at(q0_name), 8);
    EXPECT_EQ(activity.toggles.at(q1_name), 4);
}

TEST(Vcd, ActivityFromVcdMatchesDirect) {
    Design d = make_design();
    Builder b(d.nl, d.clk);
    const Bus q = b.counter(3);
    d.nl.add_output_port("q", q);
    Simulator sim(d.nl);

    std::vector<NetId> watched = {q[0], q[1], q[2]};
    std::ostringstream os;
    VcdWriter writer(os, sim, watched);
    const double clock_hz = 50e6;
    const double period_ps = 1e12 / clock_hz;
    writer.sample(1);
    for (int t = 1; t <= 100; ++t) {
        sim.tick();
        writer.sample(static_cast<std::int64_t>(t * period_ps));
    }
    std::istringstream is(os.str());
    const ActivityMap from_vcd = activity_from_vcd(d.nl, parse_vcd(is));
    const ActivityMap direct = activity_from_simulation(sim, clock_hz);
    for (const NetId n : watched)
        EXPECT_NEAR(from_vcd.rate_hz(n), direct.rate_hz(n), direct.rate_hz(n) * 0.05);
}

// ------------------------------------------------- malformed VCD input

namespace {

constexpr const char* kVcdHeader =
    "$timescale 1ps $end\n"
    "$scope module top $end\n"
    "$var wire 1 ! q0 $end\n"
    "$upscope $end\n"
    "$enddefinitions $end\n";

VcdActivity parse_string(const std::string& text) {
    std::istringstream is(text);
    return parse_vcd(is);
}

}  // namespace

TEST(VcdRobustness, TruncatedVarDeclarationThrows) {
    EXPECT_THROW((void)parse_string("$timescale 1ps $end\n$var wire 1 !"),
                 VcdParseError);
}

TEST(VcdRobustness, VarNotClosedByEndThrows) {
    EXPECT_THROW((void)parse_string("$var wire 1 ! q0 $oops\n#0\n1!\n"),
                 VcdParseError);
}

TEST(VcdRobustness, UnterminatedDirectiveThrows) {
    EXPECT_THROW((void)parse_string("$scope module top"), VcdParseError);
}

TEST(VcdRobustness, UnknownIdentifierCodeThrows) {
    EXPECT_THROW((void)parse_string(std::string(kVcdHeader) + "#0\n1\"\n"),
                 VcdParseError);
}

TEST(VcdRobustness, NonIncreasingTimestampsThrow) {
    EXPECT_THROW(
        (void)parse_string(std::string(kVcdHeader) + "#0\n1!\n#5\n0!\n#5\n1!\n"),
        VcdParseError);
    EXPECT_THROW(
        (void)parse_string(std::string(kVcdHeader) + "#10\n1!\n#3\n0!\n"),
        VcdParseError);
}

TEST(VcdRobustness, MalformedTimestampThrows) {
    EXPECT_THROW((void)parse_string(std::string(kVcdHeader) + "#\n1!\n"),
                 VcdParseError);
    EXPECT_THROW((void)parse_string(std::string(kVcdHeader) + "#12ps\n1!\n"),
                 VcdParseError);
}

TEST(VcdRobustness, ValueChangeBeforeFirstTimestampThrows) {
    EXPECT_THROW((void)parse_string(std::string(kVcdHeader) + "1!\n#0\n"),
                 VcdParseError);
}

TEST(VcdRobustness, DeclarationsWithoutValueChangeSectionThrow) {
    EXPECT_THROW((void)parse_string(kVcdHeader), VcdParseError);
}

TEST(VcdRobustness, EmptyStreamYieldsEmptyActivity) {
    // No declarations at all is not an error — just nothing to report.
    const VcdActivity activity = parse_string("");
    EXPECT_EQ(activity.duration_ps, 0);
    EXPECT_TRUE(activity.toggles.empty());
}

TEST(VcdRobustness, UnrecognizedTokenThrows) {
    EXPECT_THROW((void)parse_string(std::string(kVcdHeader) + "#0\nhello\n"),
                 VcdParseError);
}

TEST(VcdRobustness, VectorChangesAreSkippedButValidated) {
    // A declared identifier's vector change parses (and contributes no
    // scalar toggles); an undeclared or truncated one throws.
    const VcdActivity ok = parse_string(std::string(kVcdHeader) +
                                        "#0\nb1010 !\n1!\n#5\n0!\n");
    EXPECT_EQ(ok.toggles.at("q0"), 1);
    EXPECT_THROW(
        (void)parse_string(std::string(kVcdHeader) + "#0\nb1010 \"\n"),
        VcdParseError);
    EXPECT_THROW((void)parse_string(std::string(kVcdHeader) + "#0\nb1010"),
                 VcdParseError);
}

TEST(VcdRobustness, UnknownStateResetsToggleTracking) {
    // 1 -> x -> 1 is not a toggle; 1 -> x -> 0 is not either (the resume
    // value seeds tracking afresh, matching first-dump semantics).
    const VcdActivity activity = parse_string(
        std::string(kVcdHeader) + "#0\n1!\n#5\nx!\n#10\n1!\n#15\n0!\n");
    EXPECT_EQ(activity.toggles.at("q0"), 1);
}

// ------------------------------------------------- randomized properties

/// One fixture netlist with every arithmetic operator at a given width,
/// exercised against C++ reference arithmetic over random vectors.
class ArithmeticProperty : public ::testing::TestWithParam<int> {};

TEST_P(ArithmeticProperty, MatchesReferenceOverRandomVectors) {
    const int width = GetParam();
    Design d = make_design();
    Builder b(d.nl, d.clk);
    const Bus a = d.nl.add_input_port("a", width);
    const Bus x = d.nl.add_input_port("x", width);
    const Bus sel = d.nl.add_input_port("sel", 1);
    d.nl.add_output_port("add", b.add(a, x));
    d.nl.add_output_port("sub", b.sub(a, x));
    d.nl.add_output_port("addsub", b.addsub(a, x, sel[0]));
    d.nl.add_output_port("neg", b.negate(a));
    d.nl.add_output_port("inc", b.increment(a));
    d.nl.add_output_port("and", b.and_bus(a, x));
    d.nl.add_output_port("or", b.or_bus(a, x));
    d.nl.add_output_port("xor", b.xor_bus(a, x));
    d.nl.add_output_port("eq", Bus{b.eq(a, x)});
    d.nl.add_output_port("ltu", Bus{b.lt_unsigned(a, x)});

    Simulator sim(d.nl);
    Rng rng(static_cast<std::uint64_t>(width) * 1234567);
    const std::uint64_t mask = (std::uint64_t{1} << width) - 1;
    for (int trial = 0; trial < 64; ++trial) {
        const std::uint64_t av = rng.next_u64() & mask;
        const std::uint64_t xv = rng.next_u64() & mask;
        const std::uint64_t sv = rng.next_u64() & 1;
        sim.set_input("a", av);
        sim.set_input("x", xv);
        sim.set_input("sel", sv);
        EXPECT_EQ(sim.get_port("add"), (av + xv) & mask);
        EXPECT_EQ(sim.get_port("sub"), (av - xv) & mask);
        EXPECT_EQ(sim.get_port("addsub"),
                  (sv != 0 ? av - xv : av + xv) & mask);
        EXPECT_EQ(sim.get_port("neg"), (~av + 1) & mask);
        EXPECT_EQ(sim.get_port("inc"), (av + 1) & mask);
        EXPECT_EQ(sim.get_port("and"), av & xv);
        EXPECT_EQ(sim.get_port("or"), av | xv);
        EXPECT_EQ(sim.get_port("xor"), av ^ xv);
        EXPECT_EQ(sim.get_port("eq"), av == xv ? 1u : 0u);
        EXPECT_EQ(sim.get_port("ltu"), av < xv ? 1u : 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(Widths, ArithmeticProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 16, 24, 31));

class MultProperty : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(MultProperty, SignedProductMatchesReference) {
    const auto [wa, wb] = GetParam();
    Design d = make_design();
    Builder b(d.nl, d.clk);
    const Bus a = d.nl.add_input_port("a", wa);
    const Bus x = d.nl.add_input_port("x", wb);
    d.nl.add_output_port("p", b.mul_mult18(a, x, wa + wb, 0));
    Simulator sim(d.nl);
    Rng rng(77);
    auto sext = [](std::uint64_t v, int bits) {
        const std::int64_t sign = std::int64_t{1} << (bits - 1);
        return (static_cast<std::int64_t>(v) ^ sign) - sign;
    };
    for (int trial = 0; trial < 64; ++trial) {
        const std::uint64_t av = rng.next_u64() & ((1ULL << wa) - 1);
        const std::uint64_t xv = rng.next_u64() & ((1ULL << wb) - 1);
        sim.set_input("a", av);
        sim.set_input("x", xv);
        const std::int64_t expected = sext(av, wa) * sext(xv, wb);
        const std::uint64_t mask = (1ULL << (wa + wb)) - 1;
        EXPECT_EQ(sim.get_port("p"),
                  static_cast<std::uint64_t>(expected) & mask)
            << av << " * " << xv;
    }
}

INSTANTIATE_TEST_SUITE_P(WidthPairs, MultProperty,
                         ::testing::Values(std::pair{4, 4}, std::pair{12, 10},
                                           std::pair{18, 18}, std::pair{18, 8},
                                           std::pair{7, 15}));

TEST(Simulator, RejectsDirtyNetlist) {
    Netlist nl;
    const NetId floating = nl.add_net("floating");
    (void)nl.add_lut(0x1, std::vector<NetId>{floating}, "inv");
    EXPECT_THROW(Simulator sim(nl), ContractViolation);
}

// ------------------------------------------------- toggle accounting spec
// (engine.hpp contract: power-up settle is free; constants and undriven
// nets never toggle. Checked against both engines.)

template <typename Engine>
void check_power_up_settle_is_free() {
    Design d = make_design();
    Builder b(d.nl, d.clk);
    // An odd inverter chain from ground settles half its nets to 1 during
    // construction; none of those transitions may show up as activity.
    NetId n = d.nl.add_gnd();
    for (int i = 0; i < 5; ++i) n = b.not_(n);
    d.nl.add_output_port("o", Bus{n});
    d.nl.add_output_port("q", b.counter(3));
    Engine sim(d.nl);
    EXPECT_EQ(sim.get_port("o"), 1u);  // the chain did settle...
    for (const std::int64_t t : sim.toggle_counts()) EXPECT_EQ(t, 0);  // ...for free
    EXPECT_TRUE(sim.changed_nets().empty());
}

TEST(ToggleSpec, PowerUpSettleIsFreeCycleEngine) {
    check_power_up_settle_is_free<Simulator>();
}

TEST(ToggleSpec, PowerUpSettleIsFreeEventEngine) {
    check_power_up_settle_is_free<EventSimulator>();
}

template <typename Engine>
void check_constants_and_undriven_never_toggle() {
    Design d = make_design();
    Builder b(d.nl, d.clk);
    const NetId one = d.nl.add_vcc();
    const NetId zero = d.nl.add_gnd();
    const NetId dangling = d.nl.add_net("dangling");  // no driver, no sinks
    const Bus q = b.counter(4, one);  // CE tied high: counts every cycle
    d.nl.add_output_port("q", b.and_bus(q, b.xor_bus(q, b.constant(0x5, 4))));
    Engine sim(d.nl);
    sim.run(32);
    EXPECT_EQ(sim.toggle_counts()[one.value()], 0);
    EXPECT_EQ(sim.toggle_counts()[zero.value()], 0);
    EXPECT_EQ(sim.toggle_counts()[dangling.value()], 0);
    EXPECT_TRUE(sim.net_value(one));
    EXPECT_FALSE(sim.net_value(zero));
    // Real activity is still counted: counter bit 0 toggles every cycle.
    EXPECT_EQ(sim.toggle_counts()[q[0].value()], 32);
}

TEST(ToggleSpec, ConstantsNeverToggleCycleEngine) {
    check_constants_and_undriven_never_toggle<Simulator>();
}

TEST(ToggleSpec, ConstantsNeverToggleEventEngine) {
    check_constants_and_undriven_never_toggle<EventSimulator>();
}

// ------------------------------------------------- VCD vector round trip

/// Property: writing a dump with a multi-bit `$var` and parsing it back
/// reproduces the engine's per-net toggle counts exactly, bit for bit,
/// including across idle stretches where no value changes (the writer emits
/// no timestamp at all) and uneven sample spacing.
template <typename Engine>
void check_vector_round_trip() {
    Design d = make_design();
    Builder b(d.nl, d.clk);
    const Bus ce = d.nl.add_input_port("ce", 1);
    const Bus q = b.counter(5, ce[0], "q");
    d.nl.add_output_port("q", q);
    Engine sim(d.nl);

    std::ostringstream os;
    // Mixed declaration: bit 0 as a scalar AND the whole bus as one vector.
    VcdWriter writer(os, sim, {q[0]}, {{"qv", q}});
    writer.sample(0);
    Rng rng(99);
    std::int64_t t = 0;
    for (int step = 1; step <= 60; ++step) {
        sim.set_input("ce", step % 9 < 3 ? 0 : 1);  // idle gaps while CE low
        sim.tick();
        t += 500 + static_cast<std::int64_t>(rng.next_below(1500));
        writer.sample(t);
    }

    std::istringstream is(os.str());
    const VcdActivity activity = parse_vcd(is);
    for (std::size_t i = 0; i < q.size(); ++i)
        EXPECT_EQ(activity.toggles.at("qv[" + std::to_string(i) + "]"),
                  sim.toggle_counts()[q[i].value()])
            << "bit " << i;
    // The scalar alias of bit 0 agrees with the vector's LSB.
    EXPECT_EQ(activity.toggles.at(d.nl.net(q[0]).name),
              activity.toggles.at("qv[0]"));
}

TEST(Vcd, VectorRoundTripMatchesCycleEngine) { check_vector_round_trip<Simulator>(); }

TEST(Vcd, VectorRoundTripMatchesEventEngine) {
    check_vector_round_trip<EventSimulator>();
}

// ------------------------------------------------- wide-vector parsing

namespace {

constexpr const char* kVecHeader =
    "$timescale 1ps $end\n"
    "$var wire 4 # v $end\n"
    "$enddefinitions $end\n";

}  // namespace

TEST(VcdRobustness, WideVectorAccumulatesPerBitToggles) {
    // b101 left-extends to 0101 (IEEE 1364). Transitions: 0000 -> 0101 flips
    // bits 0 and 2; 0101 -> 1111 flips bits 1 and 3.
    const VcdActivity a = parse_string(std::string(kVecHeader) +
                                       "#0\nb0000 #\n#5\nb101 #\n#10\nb1111 #\n");
    EXPECT_EQ(a.toggles.at("v[0]"), 1);
    EXPECT_EQ(a.toggles.at("v[1]"), 1);
    EXPECT_EQ(a.toggles.at("v[2]"), 1);
    EXPECT_EQ(a.toggles.at("v[3]"), 1);
}

TEST(VcdRobustness, VectorUnknownBitsResetPerBitTracking) {
    // bx1 extends with x: bit 0 stays known, bits 1..3 go unknown and their
    // next value re-seeds tracking (matching scalar x semantics).
    const VcdActivity a = parse_string(std::string(kVecHeader) +
                                       "#0\nb1111 #\n#5\nbx1 #\n#10\nb0000 #\n");
    EXPECT_EQ(a.toggles.at("v[0]"), 1);  // 1 -> 1 -> 0
    EXPECT_EQ(a.toggles.at("v[1]"), 0);  // 1 -> x -> 0
    EXPECT_EQ(a.toggles.at("v[3]"), 0);
}

TEST(VcdRobustness, VectorWiderThanDeclarationThrows) {
    EXPECT_THROW((void)parse_string(std::string(kVecHeader) + "#0\nb10101 #\n"),
                 VcdParseError);
}

TEST(VcdRobustness, VectorBadDigitThrows) {
    EXPECT_THROW((void)parse_string(std::string(kVecHeader) + "#0\nb12 #\n"),
                 VcdParseError);
}

TEST(VcdRobustness, VectorChangeBeforeFirstTimestampThrows) {
    EXPECT_THROW((void)parse_string(std::string(kVecHeader) + "b0101 #\n#0\n"),
                 VcdParseError);
}

TEST(VcdRobustness, RealValueChangesAreSkipped) {
    const VcdActivity a = parse_string(std::string(kVecHeader) +
                                       "#0\nr1.5 #\nb0011 #\n#5\nb0000 #\n");
    EXPECT_EQ(a.toggles.at("v[0]"), 1);
    EXPECT_EQ(a.toggles.at("v[1]"), 1);
}

}  // namespace
}  // namespace refpga::sim
