// Equivalence and unit tests for the §4.3 reallocation engines.
//
// The determinism contract (reallocate.hpp) says the ReallocateReport is
// byte-identical between the Incremental and Reference engines and across
// any thread count. These tests pin that contract with the defaulted
// operator== — every double must match bitwise, not just approximately.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "refpga/common/contracts.hpp"
#include "refpga/common/rng.hpp"
#include "refpga/common/thread_pool.hpp"
#include "refpga/netlist/adjacency.hpp"
#include "refpga/netlist/builder.hpp"
#include "refpga/par/pack.hpp"
#include "refpga/par/placement.hpp"
#include "refpga/par/reallocate.hpp"
#include "refpga/par/router.hpp"
#include "refpga/sim/activity.hpp"
#include "refpga/sim/simulator.hpp"

namespace refpga::par {
namespace {

using fabric::Device;
using fabric::PartName;
using fabric::SliceCoord;
using netlist::Builder;
using netlist::Bus;
using netlist::CellId;
using netlist::Netlist;
using netlist::NetId;

struct Design {
    Netlist nl;
    NetId clk;
    Design() { clk = nl.add_input_port("clk", 1)[0]; }
};

// Scattered-counter scenario shared by the equivalence tests: the flow is
// deterministic, so rebuilding it fresh per engine run reproduces the exact
// same pre-optimization state (same trick the bench uses).
struct Scenario {
    Design d;
    PackedDesign packed;
    Device dev{PartName::XC3S400};
    Placement placement;
    RoutedDesign routed;
    sim::ActivityMap activity;

    Scenario()
        : packed(build(d)),
          placement(dev, d.nl, packed),
          routed((prepare(placement), placement), {}),
          activity(sim::ActivityMap(0)) {
        routed.route_all(RouteMode::Performance);
        sim::Simulator simulator(d.nl);
        simulator.run(512);
        activity = sim::activity_from_simulation(simulator, 50e6);
    }

    static PackedDesign build(Design& d) {
        Builder b(d.nl, d.clk);
        const Bus q = b.counter(8);
        Bus x = q;
        for (int i = 0; i < 3; ++i) x = b.not_bus(x);
        d.nl.add_output_port("o", x);
        return pack(d.nl);
    }

    // Scatter slices to create long, power-hungry nets (as test_par does).
    static void prepare(Placement& placement) {
        placement.place_initial();
        const Device& dev = placement.device();
        Rng rng(5);
        for (std::uint32_t i = 0; i < placement.design().slice_count(); ++i) {
            const SliceCoord target{
                static_cast<int>(rng.next_below(static_cast<std::uint32_t>(dev.cols()))),
                static_cast<int>(rng.next_below(static_cast<std::uint32_t>(dev.rows()))),
                static_cast<int>(rng.next_below(4))};
            if (!placement.slice_at(target).valid())
                placement.swap_sites(placement.slice_pos(SliceId{i}), target);
        }
    }
};

ReallocateReport run_engine(const ReallocateOptions& options) {
    Scenario s;
    return optimize_net_power(s.placement, s.routed, s.activity, options);
}

ReallocateOptions base_options() {
    ReallocateOptions options;
    options.net_count = 5;
    return options;
}

// ------------------------------------------------- engine equivalence

TEST(ReallocateEngine, IncrementalMatchesReferenceBitwise) {
    ReallocateOptions options = base_options();
    options.engine = ReallocEngine::Reference;
    const ReallocateReport reference = run_engine(options);

    options.engine = ReallocEngine::Incremental;
    const ReallocateReport incremental = run_engine(options);

    ASSERT_EQ(reference.nets.size(), 5u);
    EXPECT_TRUE(incremental == reference);
    // The scenario must actually exercise the move machinery, or the
    // equivalence above is vacuous.
    EXPECT_TRUE(std::any_of(reference.nets.begin(), reference.nets.end(),
                            [](const NetPowerChange& c) { return c.moved_logic; }));
    EXPECT_LT(reference.total_after_uw, reference.total_before_uw);
}

TEST(ReallocateEngine, ReportInvariantUnderThreadCount) {
    ReallocateOptions options = base_options();
    options.threads = 1;
    const ReallocateReport t1 = run_engine(options);
    options.threads = 4;
    const ReallocateReport t4 = run_engine(options);
    options.threads = 16;
    const ReallocateReport t16 = run_engine(options);
    EXPECT_TRUE(t4 == t1);
    EXPECT_TRUE(t16 == t1);
}

TEST(ReallocateEngine, ExternalPoolMatchesOwnedPool) {
    ReallocateOptions options = base_options();
    options.threads = 1;
    const ReallocateReport owned = run_engine(options);

    ThreadPool pool(3);
    options.pool = &pool;
    const ReallocateReport shared = run_engine(options);
    EXPECT_TRUE(shared == owned);
    // The pool survives the engine and stays usable for a second call.
    const ReallocateReport again = run_engine(options);
    EXPECT_TRUE(again == owned);
}

TEST(ReallocateEngine, TightSlackStillEquivalent) {
    // slack 1.0 forces the timing gate to reject aggressively, exercising
    // the reject/rollback path in both engines.
    ReallocateOptions options = base_options();
    options.timing_slack = 1.0;
    options.engine = ReallocEngine::Reference;
    const ReallocateReport reference = run_engine(options);
    options.engine = ReallocEngine::Incremental;
    const ReallocateReport incremental = run_engine(options);
    EXPECT_TRUE(incremental == reference);
    EXPECT_LE(reference.critical_after_ps, reference.critical_before_ps + 1e-9);
}

// ------------------------------------------------- adjacency index

TEST(ReallocateEngine, IndexMatchesNaiveSetBuilders) {
    Scenario s;
    const netlist::CellNetIndex cells(s.d.nl);
    const ReallocIndex index(s.placement, cells);
    const PackedDesign& packed = s.placement.design();

    for (std::uint32_t si = 0; si < packed.slice_count(); ++si) {
        const SliceId slice{si};
        std::set<NetId> expected;
        const PackedSlice& ps = packed.slices()[si];
        auto add_cell = [&](CellId cell) {
            for (const NetId net : cells.nets_of(cell))
                if (!s.placement.dedicated_net(net)) expected.insert(net);
        };
        for (const CellId cell : ps.luts) add_cell(cell);
        for (const CellId cell : ps.ffs) add_cell(cell);

        const auto got = index.nets_of(slice);
        ASSERT_EQ(got.size(), expected.size()) << "slice " << si;
        EXPECT_TRUE(std::equal(got.begin(), got.end(), expected.begin()));
    }

    for (std::uint32_t ni = 0; ni < s.d.nl.net_count(); ++ni) {
        const NetId net{ni};
        std::set<SliceId> expected;
        for (const CellId cell : cells.cells_of(net)) {
            const SliceId slice = packed.slice_of(cell);
            if (slice.valid()) expected.insert(slice);
        }
        const auto got = index.slices_of(net);
        ASSERT_EQ(got.size(), expected.size()) << "net " << ni;
        EXPECT_TRUE(std::equal(got.begin(), got.end(), expected.begin()));
    }
}

// ------------------------------------------------- power cache

TEST(ReallocateEngine, PowerCacheTracksReroutes) {
    Scenario s;
    const double vdd = 1.2;
    NetPowerCache cache(s.routed, s.activity, vdd);

    double fresh_total = 0.0;
    for (std::uint32_t ni = 0; ni < s.d.nl.net_count(); ++ni) {
        const NetId net{ni};
        const double fresh = net_power_uw(s.routed, net, s.activity, vdd);
        EXPECT_DOUBLE_EQ(cache.net_uw(net), fresh);
        fresh_total += fresh;
    }
    EXPECT_DOUBLE_EQ(cache.exact_total_uw(), fresh_total);

    // Re-route every non-dedicated net on low-power wires; refresh must keep
    // the cache exact, and the maintained total must track the exact one.
    for (std::uint32_t ni = 0; ni < s.d.nl.net_count(); ++ni) {
        const NetId net{ni};
        if (s.placement.dedicated_net(net) || !s.d.nl.net(net).driven()) continue;
        s.routed.reroute_net(net, RouteMode::LowPower);
        cache.refresh(net);
        EXPECT_DOUBLE_EQ(cache.net_uw(net),
                         net_power_uw(s.routed, net, s.activity, vdd));
    }
    EXPECT_NEAR(cache.total_uw(), cache.exact_total_uw(),
                1e-9 * std::max(1.0, cache.exact_total_uw()));
}

// ------------------------------------------------- trial routing

TEST(ReallocateEngine, TrialRouteMatchesLiveRoute) {
    Scenario s;
    RouteScratch scratch;
    int checked = 0;
    for (std::uint32_t ni = 0; ni < s.d.nl.net_count() && checked < 8; ++ni) {
        const NetId net{ni};
        if (s.placement.dedicated_net(net) || !s.d.nl.net(net).driven()) continue;
        const SliceId slice = s.placement.design().slice_of(s.d.nl.net(net).driver.cell);
        if (!slice.valid()) continue;

        // Trial-cost the net "as if" its driver slice sat where it already
        // sits, against the same base occupancy a live re-route would see.
        s.routed.unroute_net(net);
        scratch.clear();
        const double trial = s.routed.trial_route_capacitance_pf(
            net, slice, s.placement.slice_pos(slice), RouteMode::LowPower, scratch);
        scratch.clear();
        s.routed.reroute_net(net, RouteMode::LowPower);
        EXPECT_DOUBLE_EQ(s.routed.route(net).capacitance_pf(), trial)
            << "net " << ni;
        ++checked;
    }
    EXPECT_GT(checked, 0);
}

// ------------------------------------------------- capacity contract

TEST(ReallocateEngine, ChannelCapacityRejectsOutOfEnumWireType) {
    const ChannelCapacity capacity;
    EXPECT_THROW((void)capacity.of(static_cast<fabric::WireType>(99)),
                 ContractViolation);
}

}  // namespace
}  // namespace refpga::par
