#include <gtest/gtest.h>

#include "refpga/netlist/builder.hpp"
#include "refpga/par/pack.hpp"
#include "refpga/par/placement.hpp"
#include "refpga/par/router.hpp"
#include "refpga/power/estimator.hpp"
#include "refpga/sim/activity.hpp"
#include "refpga/sim/simulator.hpp"

namespace refpga::power {
namespace {

using fabric::Device;
using fabric::PartName;
using netlist::Builder;
using netlist::Bus;
using netlist::Netlist;
using netlist::NetId;

struct Fixture {
    Netlist nl;
    NetId clk;
    par::PackedDesign packed;

    explicit Fixture(int bits = 8) {
        clk = nl.add_input_port("clk", 1)[0];
        Builder b(nl, clk);
        const Bus q = b.counter(bits);
        nl.add_output_port("q", q);
        packed = par::pack(nl);
    }
};

struct RoutedFixture {
    Fixture f;
    Device dev;
    par::Placement placement;
    par::RoutedDesign routed;

    explicit RoutedFixture(PartName part = PartName::XC3S200, int bits = 8)
        : f(bits), dev(part), placement(dev, f.nl, f.packed), routed(placement, {}) {
        placement.place_initial();
        routed.route_all(par::RouteMode::Performance);
    }

    sim::ActivityMap activity(double clock_hz, int cycles = 256) {
        sim::Simulator simulator(f.nl);
        simulator.run(cycles);
        return sim::activity_from_simulation(simulator, clock_hz);
    }
};

TEST(Estimator, StaticPowerMatchesPart) {
    RoutedFixture r;
    const auto activity = r.activity(50e6);
    const PowerReport report = estimate_power(r.routed, activity, 50e6);
    EXPECT_DOUBLE_EQ(report.static_mw,
                     fabric::part(PartName::XC3S200).static_power_mw());
}

TEST(Estimator, BiggerDeviceBurnsMoreStaticPower) {
    RoutedFixture small(PartName::XC3S200);
    RoutedFixture big(PartName::XC3S1000);
    const auto act_small = small.activity(50e6);
    const auto act_big = big.activity(50e6);
    EXPECT_GT(estimate_power(big.routed, act_big, 50e6).static_mw,
              estimate_power(small.routed, act_small, 50e6).static_mw);
}

TEST(Estimator, DynamicPowerScalesWithClock) {
    RoutedFixture r;
    const auto act_50 = r.activity(50e6);
    const auto act_25 = r.activity(25e6);
    const PowerReport at50 = estimate_power(r.routed, act_50, 50e6);
    const PowerReport at25 = estimate_power(r.routed, act_25, 25e6);
    // Same design, half the clock: dynamic power halves (the paper's argument
    // for lowering the clock after moving algorithms into hardware).
    EXPECT_NEAR(at25.dynamic_mw(), at50.dynamic_mw() / 2.0,
                at50.dynamic_mw() * 0.05);
    EXPECT_DOUBLE_EQ(at25.static_mw, at50.static_mw);
}

TEST(Estimator, ClockPowerGrowsWithSequentialCells) {
    RoutedFixture few(PartName::XC3S200, 4);
    RoutedFixture many(PartName::XC3S200, 24);
    const auto act_few = few.activity(50e6);
    const auto act_many = many.activity(50e6);
    EXPECT_GT(estimate_power(many.routed, act_many, 50e6).clock_mw,
              estimate_power(few.routed, act_few, 50e6).clock_mw);
}

TEST(Estimator, TopNetsSortedDescending) {
    RoutedFixture r(PartName::XC3S200, 12);
    const auto activity = r.activity(50e6);
    const PowerReport report = estimate_power(r.routed, activity, 50e6, {}, 8);
    ASSERT_GT(report.top_nets.size(), 1u);
    for (std::size_t i = 1; i < report.top_nets.size(); ++i)
        EXPECT_GE(report.top_nets[i - 1].power_uw, report.top_nets[i].power_uw);
}

TEST(Estimator, LogicPowerIsSumOfNets) {
    RoutedFixture r;
    const auto activity = r.activity(50e6);
    const PowerReport report = estimate_power(r.routed, activity, 50e6);
    double sum_uw = 0.0;
    for (std::uint32_t i = 0; i < r.f.nl.net_count(); ++i)
        sum_uw += par::switch_power_uw(r.routed.route(NetId{i}).capacitance_pf(),
                                       activity.rate_hz(NetId{i}), 1.2);
    EXPECT_NEAR(report.logic_mw, sum_uw * 1e-3, 1e-9);
}

TEST(Estimator, RenderMentionsAllBuckets) {
    RoutedFixture r;
    const auto activity = r.activity(50e6);
    const std::string text = estimate_power(r.routed, activity, 50e6).render();
    EXPECT_NE(text.find("static"), std::string::npos);
    EXPECT_NE(text.find("clock"), std::string::npos);
    EXPECT_NE(text.find("logic"), std::string::npos);
    EXPECT_NE(text.find("total"), std::string::npos);
}

TEST(Estimator, LogicPowerIsLinearInActivity) {
    // The paper's §4.3 lever: P_net = 0.5 * C * V^2 * f_toggle, so scaling
    // every toggle rate scales logic power by exactly the same factor while
    // static and clock power stay put.
    RoutedFixture r;
    const auto base = r.activity(50e6);
    sim::ActivityMap doubled(base.size());
    sim::ActivityMap halved(base.size());
    for (std::uint32_t i = 0; i < base.size(); ++i) {
        doubled.set_rate(NetId{i}, base.rate_hz(NetId{i}) * 2.0);
        halved.set_rate(NetId{i}, base.rate_hz(NetId{i}) * 0.5);
    }
    const PowerReport at1 = estimate_power(r.routed, base, 50e6);
    const PowerReport at2 = estimate_power(r.routed, doubled, 50e6);
    const PowerReport at05 = estimate_power(r.routed, halved, 50e6);
    ASSERT_GT(at1.logic_mw, 0.0);
    EXPECT_NEAR(at2.logic_mw, 2.0 * at1.logic_mw, at1.logic_mw * 1e-9);
    EXPECT_NEAR(at05.logic_mw, 0.5 * at1.logic_mw, at1.logic_mw * 1e-9);
    // Monotonicity: more activity never reduces dynamic power.
    EXPECT_GT(at2.logic_mw, at1.logic_mw);
    EXPECT_LT(at05.logic_mw, at1.logic_mw);
    EXPECT_DOUBLE_EQ(at2.static_mw, at1.static_mw);
    EXPECT_DOUBLE_EQ(at2.clock_mw, at1.clock_mw);
}

TEST(Estimator, Table2StyleGoldenRegression) {
    // Pinned totals for the deterministic reference fixture (XC3S200, 8-bit
    // counter, 256 cycles at 50 MHz) — the repo's stand-in for the paper's
    // Table 2 net-power comparison. Tolerances are relative ~1e-6 so FP
    // contraction differences across compilers pass but a model change trips.
    // The logic golden moved from 0.21466546875 when the simulator's toggle
    // specification was tightened: the power-up settle is no longer counted,
    // so constant-driven nets contribute zero activity (see sim/engine.hpp).
    RoutedFixture r;
    const auto activity = r.activity(50e6);
    const PowerReport report = estimate_power(r.routed, activity, 50e6);
    EXPECT_DOUBLE_EQ(report.static_mw, 21.6);  // 18 mA * 1.2 V
    EXPECT_NEAR(report.clock_mw, 1.0944, 1.0944e-6);
    EXPECT_NEAR(report.logic_mw, 0.21461625, 0.21461625e-6);
    EXPECT_NEAR(report.total_mw(), report.static_mw + report.clock_mw + report.logic_mw,
                1e-12);
}

TEST(Estimator, TopNetsTieBreakOnNetIdAscending) {
    // Uniform toggle rates make nets with equal routed capacitance draw
    // exactly equal power; the documented comparator then orders ties by
    // ascending net id so the top-N cut is deterministic.
    RoutedFixture r(PartName::XC3S200, 12);
    sim::ActivityMap uniform(r.f.nl.net_count());
    for (std::uint32_t i = 0; i < uniform.size(); ++i)
        uniform.set_rate(NetId{i}, 25e6);
    const PowerReport report =
        estimate_power(r.routed, uniform, 50e6, {}, r.f.nl.net_count());
    ASSERT_GT(report.top_nets.size(), 2u);

    std::size_t ties = 0;
    for (std::size_t i = 1; i < report.top_nets.size(); ++i) {
        const auto& prev = report.top_nets[i - 1];
        const auto& cur = report.top_nets[i];
        if (prev.power_uw == cur.power_uw) {
            ++ties;
            EXPECT_LT(prev.net.value(), cur.net.value());
        } else {
            EXPECT_GT(prev.power_uw, cur.power_uw);
        }
    }
    // The fixture must actually exercise the tie branch, not just the sort.
    EXPECT_GT(ties, 0u);
}

TEST(Estimator, IdleDesignHasNoLogicPower) {
    // No simulation cycles: activity all zero -> logic power 0, static remains.
    Fixture f;
    Device dev(PartName::XC3S200);
    par::Placement placement(dev, f.nl, f.packed);
    placement.place_initial();
    par::RoutedDesign routed(placement, {});
    routed.route_all(par::RouteMode::Performance);
    const sim::ActivityMap idle(f.nl.net_count());
    const PowerReport report = estimate_power(routed, idle, 50e6);
    EXPECT_DOUBLE_EQ(report.logic_mw, 0.0);
    EXPECT_GT(report.static_mw, 0.0);
}

}  // namespace
}  // namespace refpga::power
