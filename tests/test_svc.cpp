// refpga::svc — sharded campaign service.
//
// Covers the layers bottom-up: frame protocol, JSON parser, job specs,
// checkpoint journal (including the corrupt/truncated failure paths), the
// worker protocol driven directly over pipes, and end-to-end coordinator
// runs that must render byte-identical reports to the single-process
// CampaignRunner — including after a SIGKILLed worker's shard is reassigned
// and after a graceful stop plus checkpoint resume.
#include <gtest/gtest.h>

#include <chrono>
#include <csignal>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include "refpga/fleet/campaign.hpp"
#include "refpga/fleet/outcome_codec.hpp"
#include "refpga/fleet/report.hpp"
#include "refpga/svc/checkpoint.hpp"
#include "refpga/svc/coordinator.hpp"
#include "refpga/svc/http.hpp"
#include "refpga/svc/job.hpp"
#include "refpga/svc/json.hpp"
#include "refpga/svc/wire.hpp"
#include "refpga/svc/worker.hpp"

namespace refpga::svc {
namespace {

std::string temp_path(const char* tag) {
    return testing::TempDir() + "refpga_svc_" + tag + "_" +
           std::to_string(::getpid());
}

// ---------------------------------------------------------------- wire

TEST(Wire, FrameReaderReassemblesByteDribble) {
    std::string stream;
    {
        // Build a wire image by writing frames into a pipe and draining it.
        int p[2];
        ASSERT_EQ(::pipe(p), 0);
        write_frame(p[1], MsgType::Assign, "1 0 8 2");
        write_frame(p[1], MsgType::Batch, "1 0 1\n{}\n");
        write_frame(p[1], MsgType::Shutdown, "");
        ::close(p[1]);
        char buf[512];
        ssize_t r = 0;
        while ((r = ::read(p[0], buf, sizeof buf)) > 0)
            stream.append(buf, static_cast<std::size_t>(r));
        ::close(p[0]);
    }

    FrameReader reader;
    std::vector<Frame> frames;
    for (const char byte : stream) {  // worst case: one byte per feed
        reader.feed(&byte, 1);
        while (auto frame = reader.next()) frames.push_back(*frame);
    }
    ASSERT_EQ(frames.size(), 3u);
    EXPECT_EQ(frames[0].type, MsgType::Assign);
    EXPECT_EQ(frames[0].payload, "1 0 8 2");
    EXPECT_EQ(frames[1].type, MsgType::Batch);
    EXPECT_EQ(frames[2].type, MsgType::Shutdown);
    EXPECT_TRUE(frames[2].payload.empty());
    EXPECT_FALSE(reader.mid_frame());
}

TEST(Wire, CorruptPrefixThrows) {
    FrameReader reader;
    const char bogus[] = "\xff\xff\xff\xff\x01";  // 4 GiB payload claim
    reader.feed(bogus, sizeof bogus - 1);
    EXPECT_THROW((void)reader.next(), WireError);
}

TEST(Wire, PayloadHelpersValidateShape) {
    EXPECT_EQ(parse_fields("3 14 15", 3),
              (std::vector<std::uint64_t>{3, 14, 15}));
    EXPECT_THROW((void)parse_fields("3 14", 3), WireError);
    EXPECT_THROW((void)parse_fields("3 x 15", 3), WireError);

    // Fields that overflow u64 must throw, not wrap; kNothingStolen (the
    // largest legitimate value, 2^64-1) must still round-trip.
    EXPECT_THROW((void)parse_fields("99999999999999999999999", 1), WireError);
    EXPECT_THROW((void)parse_fields("18446744073709551616", 1), WireError);
    EXPECT_EQ(parse_fields("18446744073709551615", 1)[0], kNothingStolen);

    const std::vector<std::string> lines{"{\"a\":1}", "{\"b\":2}"};
    const BatchPayload batch = parse_batch(encode_batch(7, 40, lines));
    EXPECT_EQ(batch.shard, 7u);
    EXPECT_EQ(batch.first, 40u);
    EXPECT_EQ(batch.lines, lines);
    EXPECT_THROW((void)parse_batch("7 40 2\n{\"a\":1}\n"), WireError);
}

// ---------------------------------------------------------------- json

TEST(Json, ParsesDocumentsStrictly) {
    const JsonValue doc = parse_json(
        " {\"s\": \"a\\nb\", \"n\": -2.5e2, \"l\": [1, true, null]} ");
    EXPECT_EQ(doc.find("s")->as_string(), "a\nb");
    EXPECT_EQ(doc.find("n")->as_number(), -250.0);
    ASSERT_EQ(doc.find("l")->as_array().size(), 3u);
    EXPECT_TRUE(doc.find("l")->as_array()[1].as_bool());
    EXPECT_TRUE(doc.find("l")->as_array()[2].is(JsonValue::Kind::Null));
    EXPECT_EQ(doc.find("missing"), nullptr);

    EXPECT_THROW((void)parse_json("{\"a\":1} trailing"), JsonError);
    EXPECT_THROW((void)parse_json("{\"a\":1,\"a\":2}"), JsonError);
    EXPECT_THROW((void)parse_json("{\"a\":}"), JsonError);
    EXPECT_THROW((void)parse_json("\"unterminated"), JsonError);
}

// ---------------------------------------------------------------- job

TEST(Job, SpecRoundTripsThroughCanonicalJson) {
    JobSpec spec;
    spec.variants = {app::SystemVariant::MonolithicHw,
                     app::SystemVariant::ReconfiguredHw};
    spec.parts = {fabric::PartName::XC3S200, fabric::PartName::XC3S1000};
    spec.ports = {fleet::PortKind::Icap};
    spec.noise_levels = {1e-3, 5e-3};
    spec.upset_rates = {0.0, 0.2};
    spec.fault_defaults.load_corruption_prob = 0.1;
    spec.fills = {{0.1, 0.9}, {0.9, 0.1}};
    spec.cycles = 3;
    spec.campaign_seed = 0xdeadbeefcafef00dULL;

    const JobSpec back = JobSpec::from_json(spec.canonical_json());
    EXPECT_EQ(back.canonical_json(), spec.canonical_json());
    EXPECT_EQ(back.fingerprint(), spec.fingerprint());
    EXPECT_EQ(back.campaign_seed, spec.campaign_seed);

    // The expansion must match SweepBuilder's scenario for scenario.
    const auto a = spec.expand();
    const auto b = back.expand();
    ASSERT_EQ(a.size(), spec.grid_size());
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].name, b[i].name);
        EXPECT_EQ(a[i].seed, b[i].seed);
    }
}

TEST(Job, RejectsUnknownAndMalformedFields) {
    EXPECT_THROW((void)JobSpec::from_json("[1]"), JobError);
    EXPECT_THROW((void)JobSpec::from_json("{\"bogus\":1}"), JobError);
    EXPECT_THROW((void)JobSpec::from_json("{\"variants\":[\"vax\"]}"), JobError);
    EXPECT_THROW((void)JobSpec::from_json("{\"parts\":[\"xc9999\"]}"), JobError);
    EXPECT_THROW((void)JobSpec::from_json("{\"cycles\":0}"), JobError);
    EXPECT_THROW((void)JobSpec::from_json("{\"upset_rates\":[-1]}"), JobError);
    EXPECT_THROW((void)JobSpec::from_json("{\"cycles\":2.5}"), JobError);
}

TEST(Job, SeedStringsRejectOverflowButAcceptMaxU64) {
    // A >20-digit seed must fail loudly, not wrap modulo 2^64 into a
    // different (accepted!) seed.
    EXPECT_THROW((void)JobSpec::from_json(
                     "{\"campaign_seed\":\"99999999999999999999999\"}"),
                 JobError);
    EXPECT_THROW(
        (void)JobSpec::from_json("{\"campaign_seed\":\"18446744073709551616\"}"),
        JobError);
    const JobSpec spec =
        JobSpec::from_json("{\"campaign_seed\":\"18446744073709551615\"}");
    EXPECT_EQ(spec.campaign_seed, UINT64_MAX);
}

TEST(Job, FingerprintSeparatesDifferentJobs) {
    JobSpec a;
    JobSpec b;
    b.campaign_seed = a.campaign_seed + 1;
    EXPECT_NE(a.fingerprint(), b.fingerprint());
    JobSpec c;
    c.noise_levels = {1e-3 + 1e-12};
    EXPECT_NE(a.fingerprint(), c.fingerprint());
}

// ---------------------------------------------------------------- checkpoint

std::vector<std::string> sample_lines(std::size_t first, std::size_t count) {
    std::vector<std::string> lines;
    for (std::size_t i = 0; i < count; ++i) {
        fleet::ScenarioOutcome o;
        o.scenario.name = "s" + std::to_string(first + i);
        o.scenario.seed = first + i;
        o.ok = true;
        lines.push_back(fleet::encode_outcome_line(o));
    }
    return lines;
}

TEST(Checkpoint, WritesAndReloadsBatches) {
    const std::string path = temp_path("ckpt_ok");
    {
        CheckpointWriter writer(path, 0x1234, 10);
        writer.append(0, sample_lines(0, 3));
        writer.append(6, sample_lines(6, 4));
        EXPECT_EQ(writer.records_written(), 2u);
    }
    const CheckpointContents contents = load_checkpoint(path, 0x1234, 10);
    EXPECT_FALSE(contents.torn_tail);
    ASSERT_EQ(contents.batches.size(), 2u);
    EXPECT_EQ(contents.batches[0].first, 0u);
    EXPECT_EQ(contents.batches[0].lines.size(), 3u);
    EXPECT_EQ(contents.batches[1].first, 6u);

    // Resume appends more records to the same journal.
    {
        CheckpointWriter writer = CheckpointWriter::resume(path, 0x1234, 10);
        writer.append(3, sample_lines(3, 3));
    }
    EXPECT_EQ(load_checkpoint(path, 0x1234, 10).batches.size(), 3u);
}

TEST(Checkpoint, TornTailIsDroppedNotFatal) {
    const std::string path = temp_path("ckpt_torn");
    {
        CheckpointWriter writer(path, 0x1234, 10);
        writer.append(0, sample_lines(0, 3));
        writer.append(3, sample_lines(3, 3));
    }
    // Chop the file mid-way through the second record, as a crash would.
    std::ifstream in(path, std::ios::binary);
    std::stringstream all;
    all << in.rdbuf();
    in.close();
    const std::string full = all.str();
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << full.substr(0, full.size() - 30);
    out.close();

    const CheckpointContents contents = load_checkpoint(path, 0x1234, 10);
    EXPECT_TRUE(contents.torn_tail);
    ASSERT_EQ(contents.batches.size(), 1u);
    EXPECT_EQ(contents.batches[0].first, 0u);
}

TEST(Checkpoint, ResumeAfterTornTailTruncatesAndStaysLoadable) {
    const std::string path = temp_path("ckpt_torn_resume");
    {
        CheckpointWriter writer(path, 0x1234, 10);
        writer.append(0, sample_lines(0, 3));
        writer.append(3, sample_lines(3, 3));
    }
    // Crash shape: chop the file mid-way through the second record.
    std::ifstream in(path, std::ios::binary);
    std::stringstream all;
    all << in.rdbuf();
    in.close();
    const std::string full = all.str();
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << full.substr(0, full.size() - 30);
    out.close();

    // Resume must drop the torn tail from the file itself before appending;
    // otherwise the partial record ends up mid-file and the next load sees
    // hard corruption instead of a clean journal.
    {
        CheckpointWriter writer = CheckpointWriter::resume(path, 0x1234, 10);
        writer.append(3, sample_lines(3, 3));
        writer.append(6, sample_lines(6, 4));
    }
    const CheckpointContents contents = load_checkpoint(path, 0x1234, 10);
    EXPECT_FALSE(contents.torn_tail);
    ASSERT_EQ(contents.batches.size(), 3u);
    EXPECT_EQ(contents.batches[1].first, 3u);
    EXPECT_EQ(contents.batches[2].first, 6u);
    EXPECT_EQ(contents.batches[2].lines.size(), 4u);

    // A second crash + resume cycle over the same journal must also work.
    std::ifstream in2(path, std::ios::binary);
    std::stringstream all2;
    all2 << in2.rdbuf();
    in2.close();
    const std::string full2 = all2.str();
    std::ofstream out2(path, std::ios::binary | std::ios::trunc);
    out2 << full2.substr(0, full2.size() - 1);  // tear just the final newline
    out2.close();
    {
        CheckpointWriter writer = CheckpointWriter::resume(path, 0x1234, 10);
        writer.append(6, sample_lines(6, 4));
    }
    EXPECT_EQ(load_checkpoint(path, 0x1234, 10).batches.size(), 3u);
}

TEST(Checkpoint, CorruptJournalsFailLoudly) {
    const std::string path = temp_path("ckpt_bad");
    const auto rewrite = [&](const std::string& content) {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out << content;
    };

    rewrite("");
    EXPECT_THROW((void)load_checkpoint(path, 0, 0), CheckpointError);

    rewrite("not-a-checkpoint v1 codec 1 fingerprint 0000000000001234 scenarios 10\n");
    EXPECT_THROW((void)load_checkpoint(path, 0, 0), CheckpointError);

    rewrite("refpga-svc-checkpoint v9 codec 1 fingerprint 0000000000001234 scenarios 10\n");
    EXPECT_THROW((void)load_checkpoint(path, 0, 0), CheckpointError);

    const std::string header =
        "refpga-svc-checkpoint v1 codec 1 fingerprint 0000000000001234 scenarios 10\n";
    // Mid-file garbage where a batch header belongs (at EOF it would be an
    // ambiguous crash tear and load would drop it instead).
    rewrite(header + "x 0 1\nmore garbage\n");
    EXPECT_THROW((void)load_checkpoint(path, 0, 0), CheckpointError);

    rewrite(header + "b 0 1\ngarbage that is not an outcome line\ne 0\n");
    EXPECT_THROW((void)load_checkpoint(path, 0, 0), CheckpointError);

    // A wrong trailer mid-file is corruption (at EOF it would be an
    // ambiguous tear, which load treats as a dropped tail instead).
    const std::string line = sample_lines(0, 1)[0];
    const std::string line2 = sample_lines(5, 1)[0];
    rewrite(header + "b 0 1\n" + line + "\ne 5\nb 5 1\n" + line2 + "\ne 5\n");
    EXPECT_THROW((void)load_checkpoint(path, 0, 0), CheckpointError);

    rewrite(header + "b 0 1\n" + line + "\ne 0\nb 0 1\n" + line + "\ne 0\n");
    EXPECT_THROW((void)load_checkpoint(path, 0, 0), CheckpointError)
        << "overlapping records must be rejected";

    rewrite(header + "b 9 2\n" + line + "\n" + line + "\ne 9\n");
    EXPECT_THROW((void)load_checkpoint(path, 0, 10), CheckpointError)
        << "records beyond the scenario count must be rejected";

    // Identity checks: wrong fingerprint or grid size refuse to resume.
    rewrite(header);
    EXPECT_THROW((void)load_checkpoint(path, 0x9999, 10), CheckpointError);
    EXPECT_THROW((void)load_checkpoint(path, 0x1234, 11), CheckpointError);
    EXPECT_NO_THROW((void)load_checkpoint(path, 0x1234, 10));
}

// ---------------------------------------------------------------- worker

struct WorkerHandle {
    pid_t pid = -1;
    int to = -1;    ///< write instructions here
    int from = -1;  ///< read worker frames here

    ~WorkerHandle() {
        if (to >= 0) ::close(to);
        if (from >= 0) ::close(from);
        if (pid > 0) {
            int status = 0;
            ::waitpid(pid, &status, 0);
        }
    }
};

void spawn_worker(WorkerHandle& w) {
    int to_pipe[2];
    int from_pipe[2];
    ASSERT_EQ(::pipe(to_pipe), 0);
    ASSERT_EQ(::pipe(from_pipe), 0);
    w.pid = ::fork();
    ASSERT_GE(w.pid, 0);
    if (w.pid == 0) {
        ::close(to_pipe[1]);
        ::close(from_pipe[0]);
        _exit(worker_main(to_pipe[0], from_pipe[1]));
    }
    ::close(to_pipe[0]);
    ::close(from_pipe[1]);
    w.to = to_pipe[1];
    w.from = from_pipe[0];
}

JobSpec small_spec() {
    JobSpec spec;
    spec.variants = {app::SystemVariant::MonolithicHw,
                     app::SystemVariant::ReconfiguredHw};
    spec.parts = {fabric::PartName::XC3S200, fabric::PartName::XC3S400};
    spec.ports = {fleet::PortKind::Jcap, fleet::PortKind::JcapAccelerated};
    spec.cycles = 2;
    spec.campaign_seed = 909;
    return spec;  // 8 scenarios
}

TEST(Worker, TruncateHandshakeIsExactAtBatchBoundary) {
    WorkerHandle w;
    spawn_worker(w);
    const JobSpec spec = small_spec();
    write_frame(w.to, MsgType::Init, encode_init(1, spec.canonical_json()));
    // Assign all 8 scenarios as shard 0 with batch size 2, then immediately
    // steal everything past index 4. The worker drains control frames
    // before each batch, so it sees the Truncate before running anything
    // and must settle on effective end 4 exactly.
    write_frame(w.to, MsgType::Assign, "0 0 8 2");
    write_frame(w.to, MsgType::Truncate, "0 4");

    bool done = false;
    std::uint64_t acked_end = 0;
    std::uint64_t done_end = 0;
    std::size_t outcomes = 0;
    Frame frame;
    while (!done || acked_end == 0) {
        ASSERT_TRUE(read_frame(w.from, frame)) << "worker hung up early";
        switch (frame.type) {
            case MsgType::Batch: {
                const BatchPayload batch = parse_batch(frame.payload);
                EXPECT_EQ(batch.first, outcomes);
                outcomes += batch.lines.size();
                break;
            }
            case MsgType::ShardDone:
                done = true;
                done_end = parse_fields(frame.payload, 2)[1];
                break;
            case MsgType::TruncateAck:
                acked_end = parse_fields(frame.payload, 2)[1];
                break;
            default:
                FAIL() << "unexpected " << msg_type_name(frame.type);
        }
    }
    EXPECT_EQ(acked_end, 4u);
    EXPECT_EQ(done_end, 4u);
    EXPECT_EQ(outcomes, 4u) << "no outcome past the truncated end may arrive";
    write_frame(w.to, MsgType::Shutdown, "");
}

TEST(Worker, AcksNothingStolenForUnknownShard) {
    WorkerHandle w;
    spawn_worker(w);
    write_frame(w.to, MsgType::Init,
                encode_init(1, small_spec().canonical_json()));
    write_frame(w.to, MsgType::Truncate, "42 0");
    Frame frame;
    ASSERT_TRUE(read_frame(w.from, frame));
    ASSERT_EQ(frame.type, MsgType::TruncateAck);
    EXPECT_EQ(parse_fields(frame.payload, 2)[1], kNothingStolen);
    write_frame(w.to, MsgType::Shutdown, "");
}

// ---------------------------------------------------------------- http

TEST(Http, ServesHandlerBodiesOverTcp) {
    HttpEndpoint http;
    http.listen(0);
    ASSERT_TRUE(http.listening());
    const std::uint16_t port = http.port();
    ASSERT_NE(port, 0);

    std::thread client([port] {
        const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
        ASSERT_GE(fd, 0);
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        addr.sin_port = htons(port);
        ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                            sizeof addr),
                  0);
        const std::string req = "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n";
        ASSERT_EQ(::send(fd, req.data(), req.size(), 0),
                  static_cast<ssize_t>(req.size()));
        std::string reply;
        char buf[1024];
        ssize_t r = 0;
        while ((r = ::recv(fd, buf, sizeof buf, 0)) > 0)
            reply.append(buf, static_cast<std::size_t>(r));
        ::close(fd);
        EXPECT_NE(reply.find("200 OK"), std::string::npos);
        EXPECT_NE(reply.find("svc_demo_total 7"), std::string::npos);
    });

    ASSERT_TRUE(http.serve_ready([](const std::string& path, std::string& body) {
        EXPECT_EQ(path, "/metrics");
        body = "svc_demo_total 7\n";
        return true;
    }));
    client.join();
}

TEST(Http, SilentClientCannotWedgeServeReady) {
    HttpEndpoint http;
    http.listen(0);
    ASSERT_TRUE(http.listening());

    // Connect and send nothing: serve_ready runs on the coordinator's event
    // loop, so it must give up on the head read and return, not block.
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(http.port());
    ASSERT_EQ(
        ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr), 0);

    const auto start = std::chrono::steady_clock::now();
    EXPECT_TRUE(http.serve_ready(
        [](const std::string&, std::string&) { return false; }));
    const auto elapsed = std::chrono::steady_clock::now() - start;
    EXPECT_LT(elapsed, std::chrono::seconds(10))
        << "serve_ready must time out on a silent client";
    ::close(fd);
}

// ---------------------------------------------------------------- e2e

std::pair<std::string, std::string> reference_renderings(const JobSpec& spec) {
    fleet::CampaignOptions options(2);
    options.stream_block_ticks = spec.stream_block_ticks;
    const fleet::CampaignResult result =
        fleet::CampaignRunner(options).run(spec.expand());
    const fleet::CampaignReport report = fleet::CampaignReport::from(result);
    return {report.render_text(), report.render_json()};
}

JobSpec fault_spec() {
    JobSpec spec;
    spec.variants = {app::SystemVariant::ReconfiguredHw};
    spec.ports = {fleet::PortKind::Jcap, fleet::PortKind::Icap};
    spec.upset_rates = {0.0, 0.2, 1.0};
    spec.fault_defaults.load_corruption_prob = 0.10;
    spec.cycles = 4;
    spec.campaign_seed = 910;
    return spec;  // 6 scenarios
}

TEST(Coordinator, MatchesSingleProcessReportByteForByte) {
    for (const JobSpec& spec : {small_spec(), fault_spec()}) {
        const auto [want_text, want_json] = reference_renderings(spec);

        CoordinatorOptions options;
        options.workers = 2;
        options.batch = 2;
        options.spool_path = temp_path("e2e_spool");
        Coordinator coordinator(spec, options);
        const CoordinatorResult result = coordinator.run();
        ASSERT_TRUE(result.completed) << result.error;
        EXPECT_EQ(result.scenarios_committed, spec.grid_size());
        EXPECT_LE(result.max_retained_rows, options.batch);
        EXPECT_EQ(coordinator.report().render_text(), want_text);
        EXPECT_EQ(coordinator.report().render_json(), want_json);
    }
}

TEST(Coordinator, SurvivesWorkerKillWithIdenticalReport) {
    JobSpec spec = small_spec();
    spec.noise_levels = {1e-3, 5e-3};  // 16 scenarios: room for a mid-shard kill
    const auto [want_text, want_json] = reference_renderings(spec);

    CoordinatorOptions options;
    options.workers = 2;
    options.batch = 1;
    options.spool_path = temp_path("kill_spool");
    options.kill_worker = 0;
    options.kill_after_commits = 1;
    options.max_worker_restarts = 2;

    obs::Recorder recorder;
    options.recorder = &recorder;
    Coordinator coordinator(spec, options);
    const CoordinatorResult result = coordinator.run();
    ASSERT_TRUE(result.completed) << result.error;
    EXPECT_GE(result.shards_reassigned + result.shards_stolen, 1u)
        << "the killed worker's remainder must have been redistributed";
    EXPECT_EQ(coordinator.report().render_text(), want_text);
    EXPECT_EQ(coordinator.report().render_json(), want_json);
    EXPECT_GT(recorder.metrics().value("svc.scenarios_committed_total"),
              0.0);
}

TEST(Coordinator, StopCheckpointResumeCompletesWithoutRecomputing) {
    JobSpec spec = small_spec();
    spec.noise_levels = {1e-3, 5e-3};  // 16 scenarios
    const auto [want_text, want_json] = reference_renderings(spec);
    const std::string ckpt = temp_path("resume_ckpt");

    std::size_t committed_first = 0;
    {
        CoordinatorOptions options;
        options.workers = 2;
        options.batch = 1;
        options.checkpoint_path = ckpt;
        options.spool_path = temp_path("resume_spool_a");
        options.stop_after_commits = 3;
        Coordinator coordinator(spec, options);
        const CoordinatorResult result = coordinator.run();
        EXPECT_FALSE(result.completed);
        committed_first = result.scenarios_committed;
        EXPECT_GE(committed_first, 3u);
        EXPECT_LT(committed_first, spec.grid_size());
    }
    {
        CoordinatorOptions options;
        options.workers = 2;
        options.batch = 1;
        options.checkpoint_path = ckpt;
        options.resume = true;
        options.spool_path = temp_path("resume_spool_b");
        Coordinator coordinator(spec, options);
        const CoordinatorResult result = coordinator.run();
        ASSERT_TRUE(result.completed) << result.error;
        EXPECT_EQ(result.scenarios_resumed, committed_first)
            << "resume must replay exactly what the first run committed";
        EXPECT_EQ(coordinator.report().render_text(), want_text);
        EXPECT_EQ(coordinator.report().render_json(), want_json);
    }

    // A resume against a different job must refuse the journal.
    JobSpec other = spec;
    other.campaign_seed += 1;
    CoordinatorOptions options;
    options.checkpoint_path = ckpt;
    options.resume = true;
    options.spool_path = temp_path("resume_spool_c");
    Coordinator coordinator(other, options);
    EXPECT_THROW((void)coordinator.run(), CheckpointError);
}

}  // namespace
}  // namespace refpga::svc
