// refpga::svc — sharded campaign service.
//
// Covers the layers bottom-up: frame protocol, JSON parser, job specs,
// checkpoint journal (including the corrupt/truncated failure paths), the
// worker protocol driven directly over pipes, and end-to-end coordinator
// runs that must render byte-identical reports to the single-process
// CampaignRunner — including after a SIGKILLed worker's shard is reassigned
// and after a graceful stop plus checkpoint resume.
#include <gtest/gtest.h>

#include <chrono>
#include <csignal>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include "refpga/fleet/campaign.hpp"
#include "refpga/fleet/outcome_codec.hpp"
#include "refpga/fleet/report.hpp"
#include "refpga/svc/chaos.hpp"
#include "refpga/svc/checkpoint.hpp"
#include "refpga/svc/coordinator.hpp"
#include "refpga/svc/http.hpp"
#include "refpga/svc/job.hpp"
#include "refpga/svc/json.hpp"
#include "refpga/svc/wire.hpp"
#include "refpga/svc/worker.hpp"

namespace refpga::svc {
namespace {

std::string temp_path(const char* tag) {
    return testing::TempDir() + "refpga_svc_" + tag + "_" +
           std::to_string(::getpid());
}

// ---------------------------------------------------------------- wire

TEST(Wire, FrameReaderReassemblesByteDribble) {
    std::string stream;
    {
        // Build a wire image by writing frames into a pipe and draining it.
        int p[2];
        ASSERT_EQ(::pipe(p), 0);
        write_frame(p[1], MsgType::Assign, "1 0 8 2");
        write_frame(p[1], MsgType::Batch, "1 0 1\n{}\n");
        write_frame(p[1], MsgType::Shutdown, "");
        ::close(p[1]);
        char buf[512];
        ssize_t r = 0;
        while ((r = ::read(p[0], buf, sizeof buf)) > 0)
            stream.append(buf, static_cast<std::size_t>(r));
        ::close(p[0]);
    }

    FrameReader reader;
    std::vector<Frame> frames;
    for (const char byte : stream) {  // worst case: one byte per feed
        reader.feed(&byte, 1);
        while (auto frame = reader.next()) frames.push_back(*frame);
    }
    ASSERT_EQ(frames.size(), 3u);
    EXPECT_EQ(frames[0].type, MsgType::Assign);
    EXPECT_EQ(frames[0].payload, "1 0 8 2");
    EXPECT_EQ(frames[1].type, MsgType::Batch);
    EXPECT_EQ(frames[2].type, MsgType::Shutdown);
    EXPECT_TRUE(frames[2].payload.empty());
    EXPECT_FALSE(reader.mid_frame());
}

TEST(Wire, CorruptPrefixThrows) {
    FrameReader reader;
    const char bogus[] = "\xff\xff\xff\xff\x01";  // 4 GiB payload claim
    reader.feed(bogus, sizeof bogus - 1);
    EXPECT_THROW((void)reader.next(), WireError);
}

TEST(Wire, PayloadHelpersValidateShape) {
    EXPECT_EQ(parse_fields("3 14 15", 3),
              (std::vector<std::uint64_t>{3, 14, 15}));
    EXPECT_THROW((void)parse_fields("3 14", 3), WireError);
    EXPECT_THROW((void)parse_fields("3 x 15", 3), WireError);

    // Fields that overflow u64 must throw, not wrap; kNothingStolen (the
    // largest legitimate value, 2^64-1) must still round-trip.
    EXPECT_THROW((void)parse_fields("99999999999999999999999", 1), WireError);
    EXPECT_THROW((void)parse_fields("18446744073709551616", 1), WireError);
    EXPECT_EQ(parse_fields("18446744073709551615", 1)[0], kNothingStolen);

    const std::vector<std::string> lines{"{\"a\":1}", "{\"b\":2}"};
    const BatchPayload batch = parse_batch(encode_batch(7, 40, lines));
    EXPECT_EQ(batch.shard, 7u);
    EXPECT_EQ(batch.first, 40u);
    EXPECT_EQ(batch.lines, lines);
    EXPECT_THROW((void)parse_batch("7 40 2\n{\"a\":1}\n"), WireError);
}

// ---------------------------------------------------------------- json

TEST(Json, ParsesDocumentsStrictly) {
    const JsonValue doc = parse_json(
        " {\"s\": \"a\\nb\", \"n\": -2.5e2, \"l\": [1, true, null]} ");
    EXPECT_EQ(doc.find("s")->as_string(), "a\nb");
    EXPECT_EQ(doc.find("n")->as_number(), -250.0);
    ASSERT_EQ(doc.find("l")->as_array().size(), 3u);
    EXPECT_TRUE(doc.find("l")->as_array()[1].as_bool());
    EXPECT_TRUE(doc.find("l")->as_array()[2].is(JsonValue::Kind::Null));
    EXPECT_EQ(doc.find("missing"), nullptr);

    EXPECT_THROW((void)parse_json("{\"a\":1} trailing"), JsonError);
    EXPECT_THROW((void)parse_json("{\"a\":1,\"a\":2}"), JsonError);
    EXPECT_THROW((void)parse_json("{\"a\":}"), JsonError);
    EXPECT_THROW((void)parse_json("\"unterminated"), JsonError);
}

// ---------------------------------------------------------------- job

TEST(Job, SpecRoundTripsThroughCanonicalJson) {
    JobSpec spec;
    spec.variants = {app::SystemVariant::MonolithicHw,
                     app::SystemVariant::ReconfiguredHw};
    spec.parts = {fabric::PartName::XC3S200, fabric::PartName::XC3S1000};
    spec.ports = {fleet::PortKind::Icap};
    spec.noise_levels = {1e-3, 5e-3};
    spec.upset_rates = {0.0, 0.2};
    spec.fault_defaults.load_corruption_prob = 0.1;
    spec.fills = {{0.1, 0.9}, {0.9, 0.1}};
    spec.cycles = 3;
    spec.campaign_seed = 0xdeadbeefcafef00dULL;

    const JobSpec back = JobSpec::from_json(spec.canonical_json());
    EXPECT_EQ(back.canonical_json(), spec.canonical_json());
    EXPECT_EQ(back.fingerprint(), spec.fingerprint());
    EXPECT_EQ(back.campaign_seed, spec.campaign_seed);

    // The expansion must match SweepBuilder's scenario for scenario.
    const auto a = spec.expand();
    const auto b = back.expand();
    ASSERT_EQ(a.size(), spec.grid_size());
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].name, b[i].name);
        EXPECT_EQ(a[i].seed, b[i].seed);
    }
}

TEST(Job, RejectsUnknownAndMalformedFields) {
    EXPECT_THROW((void)JobSpec::from_json("[1]"), JobError);
    EXPECT_THROW((void)JobSpec::from_json("{\"bogus\":1}"), JobError);
    EXPECT_THROW((void)JobSpec::from_json("{\"variants\":[\"vax\"]}"), JobError);
    EXPECT_THROW((void)JobSpec::from_json("{\"parts\":[\"xc9999\"]}"), JobError);
    EXPECT_THROW((void)JobSpec::from_json("{\"cycles\":0}"), JobError);
    EXPECT_THROW((void)JobSpec::from_json("{\"upset_rates\":[-1]}"), JobError);
    EXPECT_THROW((void)JobSpec::from_json("{\"cycles\":2.5}"), JobError);
}

TEST(Job, SeedStringsRejectOverflowButAcceptMaxU64) {
    // A >20-digit seed must fail loudly, not wrap modulo 2^64 into a
    // different (accepted!) seed.
    EXPECT_THROW((void)JobSpec::from_json(
                     "{\"campaign_seed\":\"99999999999999999999999\"}"),
                 JobError);
    EXPECT_THROW(
        (void)JobSpec::from_json("{\"campaign_seed\":\"18446744073709551616\"}"),
        JobError);
    const JobSpec spec =
        JobSpec::from_json("{\"campaign_seed\":\"18446744073709551615\"}");
    EXPECT_EQ(spec.campaign_seed, UINT64_MAX);
}

TEST(Job, FingerprintSeparatesDifferentJobs) {
    JobSpec a;
    JobSpec b;
    b.campaign_seed = a.campaign_seed + 1;
    EXPECT_NE(a.fingerprint(), b.fingerprint());
    JobSpec c;
    c.noise_levels = {1e-3 + 1e-12};
    EXPECT_NE(a.fingerprint(), c.fingerprint());
}

// ---------------------------------------------------------------- checkpoint

std::vector<std::string> sample_lines(std::size_t first, std::size_t count) {
    std::vector<std::string> lines;
    for (std::size_t i = 0; i < count; ++i) {
        fleet::ScenarioOutcome o;
        o.scenario.name = "s" + std::to_string(first + i);
        o.scenario.seed = first + i;
        o.ok = true;
        lines.push_back(fleet::encode_outcome_line(o));
    }
    return lines;
}

TEST(Checkpoint, WritesAndReloadsBatches) {
    const std::string path = temp_path("ckpt_ok");
    {
        CheckpointWriter writer(path, 0x1234, 10);
        writer.append(0, sample_lines(0, 3));
        writer.append(6, sample_lines(6, 4));
        EXPECT_EQ(writer.records_written(), 2u);
    }
    const CheckpointContents contents = load_checkpoint(path, 0x1234, 10);
    EXPECT_FALSE(contents.torn_tail);
    ASSERT_EQ(contents.batches.size(), 2u);
    EXPECT_EQ(contents.batches[0].first, 0u);
    EXPECT_EQ(contents.batches[0].lines.size(), 3u);
    EXPECT_EQ(contents.batches[1].first, 6u);

    // Resume appends more records to the same journal.
    {
        CheckpointWriter writer = CheckpointWriter::resume(path, 0x1234, 10);
        writer.append(3, sample_lines(3, 3));
    }
    EXPECT_EQ(load_checkpoint(path, 0x1234, 10).batches.size(), 3u);
}

TEST(Checkpoint, TornTailIsDroppedNotFatal) {
    const std::string path = temp_path("ckpt_torn");
    {
        CheckpointWriter writer(path, 0x1234, 10);
        writer.append(0, sample_lines(0, 3));
        writer.append(3, sample_lines(3, 3));
    }
    // Chop the file mid-way through the second record, as a crash would.
    std::ifstream in(path, std::ios::binary);
    std::stringstream all;
    all << in.rdbuf();
    in.close();
    const std::string full = all.str();
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << full.substr(0, full.size() - 30);
    out.close();

    const CheckpointContents contents = load_checkpoint(path, 0x1234, 10);
    EXPECT_TRUE(contents.torn_tail);
    ASSERT_EQ(contents.batches.size(), 1u);
    EXPECT_EQ(contents.batches[0].first, 0u);
}

TEST(Checkpoint, ResumeAfterTornTailTruncatesAndStaysLoadable) {
    const std::string path = temp_path("ckpt_torn_resume");
    {
        CheckpointWriter writer(path, 0x1234, 10);
        writer.append(0, sample_lines(0, 3));
        writer.append(3, sample_lines(3, 3));
    }
    // Crash shape: chop the file mid-way through the second record.
    std::ifstream in(path, std::ios::binary);
    std::stringstream all;
    all << in.rdbuf();
    in.close();
    const std::string full = all.str();
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << full.substr(0, full.size() - 30);
    out.close();

    // Resume must drop the torn tail from the file itself before appending;
    // otherwise the partial record ends up mid-file and the next load sees
    // hard corruption instead of a clean journal.
    {
        CheckpointWriter writer = CheckpointWriter::resume(path, 0x1234, 10);
        writer.append(3, sample_lines(3, 3));
        writer.append(6, sample_lines(6, 4));
    }
    const CheckpointContents contents = load_checkpoint(path, 0x1234, 10);
    EXPECT_FALSE(contents.torn_tail);
    ASSERT_EQ(contents.batches.size(), 3u);
    EXPECT_EQ(contents.batches[1].first, 3u);
    EXPECT_EQ(contents.batches[2].first, 6u);
    EXPECT_EQ(contents.batches[2].lines.size(), 4u);

    // A second crash + resume cycle over the same journal must also work.
    std::ifstream in2(path, std::ios::binary);
    std::stringstream all2;
    all2 << in2.rdbuf();
    in2.close();
    const std::string full2 = all2.str();
    std::ofstream out2(path, std::ios::binary | std::ios::trunc);
    out2 << full2.substr(0, full2.size() - 1);  // tear just the final newline
    out2.close();
    {
        CheckpointWriter writer = CheckpointWriter::resume(path, 0x1234, 10);
        writer.append(6, sample_lines(6, 4));
    }
    EXPECT_EQ(load_checkpoint(path, 0x1234, 10).batches.size(), 3u);
}

TEST(Checkpoint, CorruptJournalsFailLoudly) {
    const std::string path = temp_path("ckpt_bad");
    const auto rewrite = [&](const std::string& content) {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out << content;
    };

    rewrite("");
    EXPECT_THROW((void)load_checkpoint(path, 0, 0), CheckpointError);

    rewrite("not-a-checkpoint v1 codec 1 fingerprint 0000000000001234 scenarios 10\n");
    EXPECT_THROW((void)load_checkpoint(path, 0, 0), CheckpointError);

    rewrite("refpga-svc-checkpoint v9 codec 1 fingerprint 0000000000001234 scenarios 10\n");
    EXPECT_THROW((void)load_checkpoint(path, 0, 0), CheckpointError);

    const std::string header =
        "refpga-svc-checkpoint v1 codec 1 fingerprint 0000000000001234 scenarios 10\n";
    // Mid-file garbage where a batch header belongs (at EOF it would be an
    // ambiguous crash tear and load would drop it instead).
    rewrite(header + "x 0 1\nmore garbage\n");
    EXPECT_THROW((void)load_checkpoint(path, 0, 0), CheckpointError);

    rewrite(header + "b 0 1\ngarbage that is not an outcome line\ne 0\n");
    EXPECT_THROW((void)load_checkpoint(path, 0, 0), CheckpointError);

    // A wrong trailer mid-file is corruption (at EOF it would be an
    // ambiguous tear, which load treats as a dropped tail instead).
    const std::string line = sample_lines(0, 1)[0];
    const std::string line2 = sample_lines(5, 1)[0];
    rewrite(header + "b 0 1\n" + line + "\ne 5\nb 5 1\n" + line2 + "\ne 5\n");
    EXPECT_THROW((void)load_checkpoint(path, 0, 0), CheckpointError);

    rewrite(header + "b 0 1\n" + line + "\ne 0\nb 0 1\n" + line + "\ne 0\n");
    EXPECT_THROW((void)load_checkpoint(path, 0, 0), CheckpointError)
        << "overlapping records must be rejected";

    rewrite(header + "b 9 2\n" + line + "\n" + line + "\ne 9\n");
    EXPECT_THROW((void)load_checkpoint(path, 0, 10), CheckpointError)
        << "records beyond the scenario count must be rejected";

    // Identity checks: wrong fingerprint or grid size refuse to resume.
    rewrite(header);
    EXPECT_THROW((void)load_checkpoint(path, 0x9999, 10), CheckpointError);
    EXPECT_THROW((void)load_checkpoint(path, 0x1234, 11), CheckpointError);
    EXPECT_NO_THROW((void)load_checkpoint(path, 0x1234, 10));
}

TEST(Checkpoint, TearAtEveryByteOffsetLoadsOrFailsThenResumes) {
    const std::string path = temp_path("ckpt_offsets");
    {
        CheckpointWriter writer(path, 0xabcd, 10);
        writer.set_fsync_every(1);  // durability policy: sync every append
        writer.append(0, sample_lines(0, 3));
        writer.append(3, sample_lines(3, 2));
        writer.sync();
        EXPECT_EQ(writer.records_written(), 2u);
    }
    std::ifstream in(path, std::ios::binary);
    std::stringstream all;
    all << in.rdbuf();
    in.close();
    const std::string full = all.str();
    const std::size_t header_end = full.find('\n') + 1;
    ASSERT_GT(header_end, 1u);

    // A crash can land at any byte. For every prefix of the journal: a cut
    // inside the header is hard corruption; any later cut must load as a
    // valid prefix (complete records kept, the torn tail dropped), and a
    // resume against that prefix must truncate the tear and stay appendable.
    for (std::size_t cut = 0; cut < full.size(); ++cut) {
        {
            std::ofstream out(path, std::ios::binary | std::ios::trunc);
            out << full.substr(0, cut);
        }
        if (cut < header_end) {
            EXPECT_THROW((void)load_checkpoint(path, 0xabcd, 10),
                         CheckpointError)
                << "cut=" << cut;
            continue;
        }
        CheckpointContents contents;
        ASSERT_NO_THROW(contents = load_checkpoint(path, 0xabcd, 10))
            << "cut=" << cut;
        EXPECT_LE(contents.batches.size(), 2u);
        {
            CheckpointWriter writer = CheckpointWriter::resume(path, 0xabcd, 10);
            writer.append(8, sample_lines(8, 1));
        }
        const CheckpointContents again = load_checkpoint(path, 0xabcd, 10);
        EXPECT_FALSE(again.torn_tail) << "cut=" << cut;
        ASSERT_EQ(again.batches.size(), contents.batches.size() + 1)
            << "cut=" << cut;
        EXPECT_EQ(again.batches.back().first, 8u);
    }
}

// ---------------------------------------------------------------- chaos

TEST(Chaos, SameSeedInjectsIdenticalTrace) {
    ChaosSpec spec;
    spec.torn_frame_prob = 0.2;
    spec.corrupt_length_prob = 0.1;
    spec.corrupt_payload_prob = 0.1;
    spec.drop_frame_prob = 0.15;
    spec.delay_frame_prob = 0.15;
    spec.hang_prob = 0.0;
    spec.slow_batch_prob = 0.3;

    ChaosPlan a(spec, 42);
    ChaosPlan b(spec, 42);
    for (int i = 0; i < 200; ++i) {
        const WireAction wa = a.next_wire_action(64, 59);
        const WireAction wb = b.next_wire_action(64, 59);
        EXPECT_EQ(static_cast<int>(wa.kind), static_cast<int>(wb.kind));
        EXPECT_EQ(wa.cut, wb.cut);
        EXPECT_EQ(wa.offset, wb.offset);
        EXPECT_EQ(a.next_slow(), b.next_slow());
    }
    EXPECT_GT(a.stats().total(), 0u) << "nothing fired in 200 frames";
    EXPECT_EQ(a.trace(), b.trace());

    // A different seed must produce a different schedule.
    ChaosPlan c(spec, 43);
    for (int i = 0; i < 200; ++i) {
        (void)c.next_wire_action(64, 59);
        (void)c.next_slow();
    }
    EXPECT_NE(a.trace(), c.trace());
}

TEST(Chaos, CategoryStreamsAreIndependent) {
    // The drop schedule must be byte-identical whether or not the delay
    // category is also armed: every category draws from its own stream and
    // draws exactly once per frame regardless of what fires.
    ChaosSpec drops_only;
    drops_only.drop_frame_prob = 0.3;
    ChaosSpec drops_and_delays = drops_only;
    drops_and_delays.delay_frame_prob = 0.5;

    ChaosPlan a(drops_only, 7);
    ChaosPlan b(drops_and_delays, 7);
    std::vector<int> drop_frames_a;
    std::vector<int> drop_frames_b;
    for (int i = 0; i < 300; ++i) {
        if (a.next_wire_action(32, 27).kind == WireAction::Kind::Drop)
            drop_frames_a.push_back(i);
        if (b.next_wire_action(32, 27).kind == WireAction::Kind::Drop)
            drop_frames_b.push_back(i);
    }
    EXPECT_FALSE(drop_frames_a.empty());
    EXPECT_EQ(drop_frames_a, drop_frames_b);
    EXPECT_GT(b.stats().delayed_frames, 0u);
}

TEST(Chaos, EveryCategoryFiresAndIsCounted) {
    {
        ChaosSpec spec;
        spec.torn_frame_prob = 1.0;
        ChaosPlan plan(spec, 1);
        const WireAction action = plan.next_wire_action(16, 11);
        EXPECT_EQ(action.kind, WireAction::Kind::Torn);
        EXPECT_GE(action.cut, 1u);
        EXPECT_LT(action.cut, 16u);
        EXPECT_EQ(plan.stats().torn_frames, 1u);
    }
    {
        ChaosSpec spec;
        spec.corrupt_length_prob = 1.0;
        ChaosPlan plan(spec, 1);
        EXPECT_EQ(plan.next_wire_action(16, 11).kind,
                  WireAction::Kind::CorruptLength);
        EXPECT_EQ(plan.stats().corrupt_lengths, 1u);
    }
    {
        ChaosSpec spec;
        spec.corrupt_payload_prob = 1.0;
        ChaosPlan plan(spec, 1);
        const WireAction action = plan.next_wire_action(16, 11);
        EXPECT_EQ(action.kind, WireAction::Kind::CorruptPayload);
        EXPECT_LT(action.offset, 8u);
        EXPECT_EQ(plan.stats().corrupt_payloads, 1u);
    }
    {
        ChaosSpec spec;
        spec.drop_frame_prob = 1.0;
        ChaosPlan plan(spec, 1);
        EXPECT_EQ(plan.next_wire_action(16, 11).kind, WireAction::Kind::Drop);
        EXPECT_EQ(plan.stats().dropped_frames, 1u);
    }
    {
        ChaosSpec spec;
        spec.delay_frame_prob = 1.0;
        spec.delay_ms = 1;
        ChaosPlan plan(spec, 1);
        EXPECT_EQ(plan.next_wire_action(16, 11).kind, WireAction::Kind::Delay);
        EXPECT_EQ(plan.stats().delayed_frames, 1u);
    }
    {
        ChaosSpec spec;
        spec.hang_prob = 1.0;
        spec.slow_batch_prob = 1.0;
        ChaosPlan plan(spec, 1);
        EXPECT_TRUE(plan.next_hang());
        EXPECT_TRUE(plan.next_slow());
        EXPECT_EQ(plan.stats().hangs, 1u);
        EXPECT_EQ(plan.stats().slow_batches, 1u);
    }
    {
        ChaosSpec spec;
        spec.crash_phase = CrashPhase::MidBatch;
        spec.crash_after = 3;
        ChaosPlan plan(spec, 1);
        EXPECT_FALSE(plan.crash_now(CrashPhase::PreInit));  // wrong phase
        EXPECT_FALSE(plan.crash_now(CrashPhase::MidBatch));  // opportunity 1
        EXPECT_FALSE(plan.crash_now(CrashPhase::MidBatch));  // opportunity 2
        EXPECT_TRUE(plan.crash_now(CrashPhase::MidBatch));   // opportunity 3
        EXPECT_EQ(plan.stats().crashes, 1u);
    }
    {
        ChaosSpec spec;
        spec.checkpoint_tear_after = 2;
        ChaosPlan plan(spec, 1);
        EXPECT_FALSE(plan.tear_checkpoint_now());
        EXPECT_TRUE(plan.tear_checkpoint_now());
        EXPECT_EQ(plan.stats().checkpoint_tears, 1u);
    }
}

TEST(Chaos, DisarmedPlanInjectsNothing) {
    ChaosPlan plan(ChaosSpec{}, 99);
    EXPECT_FALSE(plan.armed());
    for (int i = 0; i < 50; ++i) {
        EXPECT_EQ(plan.next_wire_action(16, 11).kind, WireAction::Kind::None);
        EXPECT_FALSE(plan.next_hang());
        EXPECT_FALSE(plan.next_slow());
        EXPECT_FALSE(plan.crash_now(CrashPhase::MidBatch));
        EXPECT_FALSE(plan.tear_checkpoint_now());
    }
    EXPECT_EQ(plan.stats().total(), 0u);
    EXPECT_TRUE(plan.trace().empty());
}

TEST(Chaos, EncodeParseRoundTripsExactly) {
    ChaosSpec spec;
    spec.torn_frame_prob = 0.1;  // not exactly representable: hexfloat must
    spec.corrupt_length_prob = 0.25;  // round-trip bit-exactly anyway
    spec.corrupt_payload_prob = 1.0 / 3.0;
    spec.delay_frame_prob = 0.05;
    spec.delay_ms = 7;
    spec.drop_frame_prob = 0.9;
    spec.hang_prob = 0.125;
    spec.slow_batch_prob = 1e-9;
    spec.slow_ms = 33;
    spec.crash_phase = CrashPhase::PreTruncateAck;
    spec.crash_after = 5;

    const std::string encoded = encode_chaos(spec, 0xfeedULL);
    ASSERT_EQ(encoded.compare(0, 6, "chaos "), 0);
    const auto [back, seed] = parse_chaos(encoded.substr(6));
    EXPECT_EQ(seed, 0xfeedULL);
    EXPECT_EQ(back.torn_frame_prob, spec.torn_frame_prob);
    EXPECT_EQ(back.corrupt_length_prob, spec.corrupt_length_prob);
    EXPECT_EQ(back.corrupt_payload_prob, spec.corrupt_payload_prob);
    EXPECT_EQ(back.delay_frame_prob, spec.delay_frame_prob);
    EXPECT_EQ(back.delay_ms, spec.delay_ms);
    EXPECT_EQ(back.drop_frame_prob, spec.drop_frame_prob);
    EXPECT_EQ(back.hang_prob, spec.hang_prob);
    EXPECT_EQ(back.slow_batch_prob, spec.slow_batch_prob);
    EXPECT_EQ(back.slow_ms, spec.slow_ms);
    EXPECT_EQ(back.crash_phase, spec.crash_phase);
    EXPECT_EQ(back.crash_after, spec.crash_after);

    // Same (spec, seed) on both sides of the wire: same injected trace.
    ChaosPlan local(spec, seed);
    ChaosPlan remote(back, seed);
    for (int i = 0; i < 64; ++i) {
        const WireAction a = local.next_wire_action(40, 35);
        const WireAction b = remote.next_wire_action(40, 35);
        EXPECT_EQ(static_cast<int>(a.kind), static_cast<int>(b.kind));
    }
    EXPECT_EQ(local.trace(), remote.trace());

    EXPECT_TRUE(encode_chaos(ChaosSpec{}, 1).empty())
        << "an unarmed spec must keep the Init line chaos-free";
    EXPECT_THROW((void)parse_chaos("1 2 3"), std::runtime_error);
    EXPECT_THROW((void)parse_chaos("x 0 0 0 0 2 0 0 0 20 none 1"),
                 std::runtime_error);

    // Per-worker derived seeds must differ across slots and generations.
    EXPECT_NE(worker_chaos_seed(1, 0, 0), worker_chaos_seed(1, 1, 0));
    EXPECT_NE(worker_chaos_seed(1, 0, 0), worker_chaos_seed(1, 0, 1));
}

// ---------------------------------------------------------------- worker

struct WorkerHandle {
    pid_t pid = -1;
    int to = -1;    ///< write instructions here
    int from = -1;  ///< read worker frames here

    ~WorkerHandle() {
        if (to >= 0) ::close(to);
        if (from >= 0) ::close(from);
        if (pid > 0) {
            int status = 0;
            ::waitpid(pid, &status, 0);
        }
    }
};

void spawn_worker(WorkerHandle& w) {
    int to_pipe[2];
    int from_pipe[2];
    ASSERT_EQ(::pipe(to_pipe), 0);
    ASSERT_EQ(::pipe(from_pipe), 0);
    w.pid = ::fork();
    ASSERT_GE(w.pid, 0);
    if (w.pid == 0) {
        ::close(to_pipe[1]);
        ::close(from_pipe[0]);
        _exit(worker_main(to_pipe[0], from_pipe[1]));
    }
    ::close(to_pipe[0]);
    ::close(from_pipe[1]);
    w.to = to_pipe[1];
    w.from = from_pipe[0];
}

JobSpec small_spec() {
    JobSpec spec;
    spec.variants = {app::SystemVariant::MonolithicHw,
                     app::SystemVariant::ReconfiguredHw};
    spec.parts = {fabric::PartName::XC3S200, fabric::PartName::XC3S400};
    spec.ports = {fleet::PortKind::Jcap, fleet::PortKind::JcapAccelerated};
    spec.cycles = 2;
    spec.campaign_seed = 909;
    return spec;  // 8 scenarios
}

TEST(Worker, TruncateHandshakeIsExactAtBatchBoundary) {
    WorkerHandle w;
    spawn_worker(w);
    const JobSpec spec = small_spec();
    write_frame(w.to, MsgType::Init, encode_init(1, spec.canonical_json()));
    // Assign all 8 scenarios as shard 0 with batch size 2, then immediately
    // steal everything past index 4. The worker drains control frames
    // before each batch, so it sees the Truncate before running anything
    // and must settle on effective end 4 exactly.
    write_frame(w.to, MsgType::Assign, "0 0 8 2");
    write_frame(w.to, MsgType::Truncate, "0 4");

    bool done = false;
    std::uint64_t acked_end = 0;
    std::uint64_t done_end = 0;
    std::size_t outcomes = 0;
    Frame frame;
    while (!done || acked_end == 0) {
        ASSERT_TRUE(read_frame(w.from, frame)) << "worker hung up early";
        switch (frame.type) {
            case MsgType::Batch: {
                const BatchPayload batch = parse_batch(frame.payload);
                EXPECT_EQ(batch.first, outcomes);
                outcomes += batch.lines.size();
                break;
            }
            case MsgType::ShardDone:
                done = true;
                done_end = parse_fields(frame.payload, 2)[1];
                break;
            case MsgType::TruncateAck:
                acked_end = parse_fields(frame.payload, 2)[1];
                break;
            default:
                FAIL() << "unexpected " << msg_type_name(frame.type);
        }
    }
    EXPECT_EQ(acked_end, 4u);
    EXPECT_EQ(done_end, 4u);
    EXPECT_EQ(outcomes, 4u) << "no outcome past the truncated end may arrive";
    write_frame(w.to, MsgType::Shutdown, "");
}

TEST(Worker, AcksNothingStolenForUnknownShard) {
    WorkerHandle w;
    spawn_worker(w);
    write_frame(w.to, MsgType::Init,
                encode_init(1, small_spec().canonical_json()));
    write_frame(w.to, MsgType::Truncate, "42 0");
    Frame frame;
    ASSERT_TRUE(read_frame(w.from, frame));
    ASSERT_EQ(frame.type, MsgType::TruncateAck);
    EXPECT_EQ(parse_fields(frame.payload, 2)[1], kNothingStolen);
    write_frame(w.to, MsgType::Shutdown, "");
}

TEST(Worker, AnswersPingWithEchoedPong) {
    WorkerHandle w;
    spawn_worker(w);
    write_frame(w.to, MsgType::Init,
                encode_init(1, small_spec().canonical_json()));
    write_frame(w.to, MsgType::Ping, "1729");
    Frame frame;
    ASSERT_TRUE(read_frame(w.from, frame));
    EXPECT_EQ(frame.type, MsgType::Pong);
    EXPECT_EQ(frame.payload, "1729");
    write_frame(w.to, MsgType::Shutdown, "");
}

TEST(Worker, ChaosCrashPreInitDiesBeforeAnyFrame) {
    WorkerHandle w;
    spawn_worker(w);
    ChaosSpec chaos;
    chaos.crash_phase = CrashPhase::PreInit;
    const std::string head = "1 " + encode_chaos(chaos, 5);
    write_frame(w.to, MsgType::Init,
                head + '\n' + small_spec().canonical_json());
    Frame frame;
    EXPECT_FALSE(read_frame(w.from, frame))
        << "a pre-Init crash must close the pipe without producing";
    int status = 0;
    ASSERT_EQ(::waitpid(w.pid, &status, 0), w.pid);
    w.pid = -1;
    ASSERT_TRUE(WIFEXITED(status));
    EXPECT_EQ(WEXITSTATUS(status), 9) << "chaos deaths exit with code 9";
}

// ---------------------------------------------------------------- http

TEST(Http, ServesHandlerBodiesOverTcp) {
    HttpEndpoint http;
    http.listen(0);
    ASSERT_TRUE(http.listening());
    const std::uint16_t port = http.port();
    ASSERT_NE(port, 0);

    std::thread client([port] {
        const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
        ASSERT_GE(fd, 0);
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        addr.sin_port = htons(port);
        ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                            sizeof addr),
                  0);
        const std::string req = "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n";
        ASSERT_EQ(::send(fd, req.data(), req.size(), 0),
                  static_cast<ssize_t>(req.size()));
        std::string reply;
        char buf[1024];
        ssize_t r = 0;
        while ((r = ::recv(fd, buf, sizeof buf, 0)) > 0)
            reply.append(buf, static_cast<std::size_t>(r));
        ::close(fd);
        EXPECT_NE(reply.find("200 OK"), std::string::npos);
        EXPECT_NE(reply.find("svc_demo_total 7"), std::string::npos);
    });

    ASSERT_TRUE(http.serve_ready([](const std::string& path, std::string& body) {
        EXPECT_EQ(path, "/metrics");
        body = "svc_demo_total 7\n";
        return true;
    }));
    client.join();
}

TEST(Http, SilentClientCannotWedgeServeReady) {
    HttpEndpoint http;
    http.listen(0);
    ASSERT_TRUE(http.listening());

    // Connect and send nothing: serve_ready runs on the coordinator's event
    // loop, so it must give up on the head read and return, not block.
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(http.port());
    ASSERT_EQ(
        ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr), 0);

    const auto start = std::chrono::steady_clock::now();
    EXPECT_TRUE(http.serve_ready(
        [](const std::string&, std::string&) { return false; }));
    const auto elapsed = std::chrono::steady_clock::now() - start;
    EXPECT_LT(elapsed, std::chrono::seconds(10))
        << "serve_ready must time out on a silent client";
    ::close(fd);
}

// ---------------------------------------------------------------- e2e

std::pair<std::string, std::string> reference_renderings(const JobSpec& spec) {
    fleet::CampaignOptions options(2);
    options.stream_block_ticks = spec.stream_block_ticks;
    const fleet::CampaignResult result =
        fleet::CampaignRunner(options).run(spec.expand());
    const fleet::CampaignReport report = fleet::CampaignReport::from(result);
    return {report.render_text(), report.render_json()};
}

JobSpec fault_spec() {
    JobSpec spec;
    spec.variants = {app::SystemVariant::ReconfiguredHw};
    spec.ports = {fleet::PortKind::Jcap, fleet::PortKind::Icap};
    spec.upset_rates = {0.0, 0.2, 1.0};
    spec.fault_defaults.load_corruption_prob = 0.10;
    spec.cycles = 4;
    spec.campaign_seed = 910;
    return spec;  // 6 scenarios
}

TEST(Coordinator, MatchesSingleProcessReportByteForByte) {
    for (const JobSpec& spec : {small_spec(), fault_spec()}) {
        const auto [want_text, want_json] = reference_renderings(spec);

        CoordinatorOptions options;
        options.workers = 2;
        options.batch = 2;
        options.spool_path = temp_path("e2e_spool");
        Coordinator coordinator(spec, options);
        const CoordinatorResult result = coordinator.run();
        ASSERT_TRUE(result.completed) << result.error;
        EXPECT_EQ(result.scenarios_committed, spec.grid_size());
        EXPECT_LE(result.max_retained_rows, options.batch);
        EXPECT_EQ(coordinator.report().render_text(), want_text);
        EXPECT_EQ(coordinator.report().render_json(), want_json);
    }
}

TEST(Coordinator, SurvivesWorkerKillWithIdenticalReport) {
    JobSpec spec = small_spec();
    spec.noise_levels = {1e-3, 5e-3};  // 16 scenarios: room for a mid-shard kill
    const auto [want_text, want_json] = reference_renderings(spec);

    CoordinatorOptions options;
    options.workers = 2;
    options.batch = 1;
    options.spool_path = temp_path("kill_spool");
    options.kill_worker = 0;
    options.kill_after_commits = 1;
    options.max_worker_restarts = 2;

    obs::Recorder recorder;
    options.recorder = &recorder;
    Coordinator coordinator(spec, options);
    const CoordinatorResult result = coordinator.run();
    ASSERT_TRUE(result.completed) << result.error;
    EXPECT_GE(result.shards_reassigned + result.shards_stolen, 1u)
        << "the killed worker's remainder must have been redistributed";
    EXPECT_EQ(coordinator.report().render_text(), want_text);
    EXPECT_EQ(coordinator.report().render_json(), want_json);
    EXPECT_GT(recorder.metrics().value("svc.scenarios_committed_total"),
              0.0);
}

TEST(Coordinator, StopCheckpointResumeCompletesWithoutRecomputing) {
    JobSpec spec = small_spec();
    spec.noise_levels = {1e-3, 5e-3};  // 16 scenarios
    const auto [want_text, want_json] = reference_renderings(spec);
    const std::string ckpt = temp_path("resume_ckpt");

    std::size_t committed_first = 0;
    {
        CoordinatorOptions options;
        options.workers = 2;
        options.batch = 1;
        options.checkpoint_path = ckpt;
        options.spool_path = temp_path("resume_spool_a");
        options.stop_after_commits = 3;
        Coordinator coordinator(spec, options);
        const CoordinatorResult result = coordinator.run();
        EXPECT_FALSE(result.completed);
        committed_first = result.scenarios_committed;
        EXPECT_GE(committed_first, 3u);
        EXPECT_LT(committed_first, spec.grid_size());
    }
    {
        CoordinatorOptions options;
        options.workers = 2;
        options.batch = 1;
        options.checkpoint_path = ckpt;
        options.resume = true;
        options.spool_path = temp_path("resume_spool_b");
        Coordinator coordinator(spec, options);
        const CoordinatorResult result = coordinator.run();
        ASSERT_TRUE(result.completed) << result.error;
        EXPECT_EQ(result.scenarios_resumed, committed_first)
            << "resume must replay exactly what the first run committed";
        EXPECT_EQ(coordinator.report().render_text(), want_text);
        EXPECT_EQ(coordinator.report().render_json(), want_json);
    }

    // A resume against a different job must refuse the journal.
    JobSpec other = spec;
    other.campaign_seed += 1;
    CoordinatorOptions options;
    options.checkpoint_path = ckpt;
    options.resume = true;
    options.spool_path = temp_path("resume_spool_c");
    Coordinator coordinator(other, options);
    EXPECT_THROW((void)coordinator.run(), CheckpointError);
}

// ---------------------------------------------------------------- e2e chaos

JobSpec chaos_spec() {
    JobSpec spec = small_spec();
    spec.noise_levels = {1e-3, 5e-3};  // 16 scenarios
    return spec;
}

// Multiplier for every liveness tolerance below. Sanitizer builds (and
// heavily loaded CI runners) slow scenario compute 10-20x, which would push
// healthy workers past reap windows tuned for a plain build and exhaust the
// restart budget on workers that were never faulty. The injected faults
// themselves (an infinite hang, a crash) don't need scaling — only the
// windows that separate "slow" from "dead", and the slow-batch delay that
// must stay distinguishable from ambient slowness. The CI TSan job exports
// REFPGA_TEST_TIME_SCALE=20.
int time_scale() {
    static const int scale = [] {
        const char* raw = std::getenv("REFPGA_TEST_TIME_SCALE");
        const int value = (raw != nullptr) ? std::atoi(raw) : 1;
        return value > 1 ? value : 1;
    }();
    return scale;
}

TEST(Coordinator, HeartbeatReapsHungWorkerWithIdenticalReport) {
    const JobSpec spec = chaos_spec();
    const auto [want_text, want_json] = reference_renderings(spec);

    CoordinatorOptions options;
    options.workers = 2;
    options.batch = 1;
    options.spool_path = temp_path("hang_spool");
    options.chaos.hang_prob = 1.0;  // slot 0 wedges at its first batch
    options.chaos.only_worker = 0;
    options.chaos_seed = 11;
    options.heartbeat_interval_ms = 25 * time_scale();
    options.heartbeat_miss_limit = 2;
    options.liveness_timeout_ms = 120 * time_scale();
    options.max_worker_restarts = 2;
    Coordinator coordinator(spec, options);
    const CoordinatorResult result = coordinator.run();
    ASSERT_TRUE(result.completed) << result.error;
    EXPECT_GE(result.heartbeat_misses, 1u);
    EXPECT_GE(result.liveness_kills, 1u);
    EXPECT_GE(result.worker_restarts, 1u)
        << "the reaped slot must have been restarted (clean) to finish";
    EXPECT_EQ(coordinator.report().render_text(), want_text);
    EXPECT_EQ(coordinator.report().render_json(), want_json);
}

TEST(Coordinator, ProgressDeadlineReapsSilentShardHolder) {
    const JobSpec spec = chaos_spec();
    const auto [want_text, want_json] = reference_renderings(spec);

    // No heartbeats at all: the progress deadline alone must catch a worker
    // that holds a shard and commits nothing.
    CoordinatorOptions options;
    options.workers = 2;
    options.batch = 1;
    options.spool_path = temp_path("deadline_spool");
    options.chaos.hang_prob = 1.0;
    options.chaos.only_worker = 0;
    options.chaos_seed = 12;
    options.progress_timeout_ms = 100 * time_scale();
    options.max_worker_restarts = 2;
    Coordinator coordinator(spec, options);
    const CoordinatorResult result = coordinator.run();
    ASSERT_TRUE(result.completed) << result.error;
    EXPECT_GE(result.deadline_kills, 1u);
    EXPECT_EQ(result.liveness_kills, 0u);
    EXPECT_EQ(coordinator.report().render_text(), want_text);
    EXPECT_EQ(coordinator.report().render_json(), want_json);
}

TEST(Coordinator, CrashPhasesRecoverThroughBackoffRestarts) {
    const JobSpec spec = chaos_spec();
    const auto [want_text, want_json] = reference_renderings(spec);

    for (const CrashPhase phase : {CrashPhase::PreInit, CrashPhase::MidBatch}) {
        SCOPED_TRACE(crash_phase_name(phase));
        CoordinatorOptions options;
        options.workers = 2;
        options.batch = 1;
        options.spool_path = temp_path("crash_spool");
        options.chaos.crash_phase = phase;  // every slot dies once (gen 0)
        options.chaos.crash_after = 1;
        options.chaos_seed = 13;
        options.restart_backoff_ms = 1;  // exercise the scheduled-restart path
        options.restart_backoff_cap_ms = 20;
        options.max_worker_restarts = 2;
        Coordinator coordinator(spec, options);
        const CoordinatorResult result = coordinator.run();
        ASSERT_TRUE(result.completed) << result.error;
        EXPECT_EQ(result.worker_restarts, 2u);
        EXPECT_EQ(coordinator.report().render_text(), want_text);
        EXPECT_EQ(coordinator.report().render_json(), want_json);
    }
}

TEST(Coordinator, QuarantinesCorruptStreamsAndRecovers) {
    const JobSpec spec = chaos_spec();
    const auto [want_text, want_json] = reference_renderings(spec);

    struct Case {
        const char* name;
        double ChaosSpec::*prob;
        bool counts_protocol_error;
    };
    // A torn frame is a clean death (EOF mid-frame, dropped silently); the
    // two corruptions poison the stream and must go through quarantine.
    const Case cases[] = {
        {"torn", &ChaosSpec::torn_frame_prob, false},
        {"corrupt-length", &ChaosSpec::corrupt_length_prob, true},
        {"corrupt-payload", &ChaosSpec::corrupt_payload_prob, true},
    };
    for (const Case& c : cases) {
        SCOPED_TRACE(c.name);
        CoordinatorOptions options;
        options.workers = 2;
        options.batch = 1;
        options.spool_path = temp_path("corrupt_spool");
        options.chaos.*(c.prob) = 1.0;  // every slot-0 gen-0 frame affected
        options.chaos.only_worker = 0;
        options.chaos_seed = 14;
        options.max_worker_restarts = 2;
        Coordinator coordinator(spec, options);
        const CoordinatorResult result = coordinator.run();
        ASSERT_TRUE(result.completed) << result.error;
        EXPECT_GE(result.worker_restarts, 1u);
        if (c.counts_protocol_error) {
            EXPECT_GE(result.protocol_errors, 1u);
        }
        EXPECT_EQ(coordinator.report().render_text(), want_text);
        EXPECT_EQ(coordinator.report().render_json(), want_json);
    }
}

TEST(Coordinator, SpeculatesStragglerAndDiscardsDuplicatesExactly) {
    const JobSpec spec = chaos_spec();
    const auto [want_text, want_json] = reference_renderings(spec);

    CoordinatorOptions options;
    options.workers = 2;
    options.batch = 1;
    options.shard = 8;          // one shard per worker
    options.steal_min = 1000;   // disable the exact-steal path entirely
    options.spool_path = temp_path("straggler_spool");
    options.chaos.slow_batch_prob = 1.0;  // slot 0 sleeps before every batch
    options.chaos.slow_ms = 60 * time_scale();
    options.chaos.only_worker = 0;
    options.chaos_seed = 15;
    options.straggler_factor = 2.0;
    options.straggler_min_ms = 40 * time_scale();
    Coordinator coordinator(spec, options);
    const CoordinatorResult result = coordinator.run();
    ASSERT_TRUE(result.completed) << result.error;
    EXPECT_GE(result.speculations, 1u)
        << "the idle fast worker must have re-executed the laggard's range";
    EXPECT_GE(result.duplicates_discarded, 1u)
        << "the losing copy's commits must be discarded, not double-merged";
    EXPECT_EQ(result.shards_stolen, 0u);
    EXPECT_EQ(coordinator.report().render_text(), want_text);
    EXPECT_EQ(coordinator.report().render_json(), want_json);
}

TEST(Coordinator, MinWorkersFailsFastWhenFleetCannotRecover) {
    const JobSpec spec = chaos_spec();

    CoordinatorOptions options;
    options.workers = 2;
    options.batch = 1;
    options.spool_path = temp_path("minworkers_spool");
    options.chaos.crash_phase = CrashPhase::MidBatch;
    options.chaos.crash_after = 1;
    options.chaos.only_worker = 0;  // slot 0 dies in every generation
    options.chaos_all_generations = true;
    options.chaos_seed = 16;
    options.max_worker_restarts = 1;
    options.min_workers = 2;
    Coordinator coordinator(spec, options);
    const CoordinatorResult result = coordinator.run();
    EXPECT_FALSE(result.completed);
    EXPECT_FALSE(result.partial);
    EXPECT_NE(result.error.find("min_workers"), std::string::npos)
        << result.error;
    EXPECT_EQ(result.worker_restarts, 1u);
}

TEST(Coordinator, PartialOkFinishesDegradedWithExplicitlyPartialReport) {
    const JobSpec spec = chaos_spec();

    // Persistent fault: every incarnation of every worker commits one batch
    // and dies. Once the restart budget is gone the run must finish with
    // what it has and say so in both renderings.
    CoordinatorOptions options;
    options.workers = 2;
    options.batch = 1;
    options.spool_path = temp_path("partial_spool");
    options.chaos.crash_phase = CrashPhase::MidBatch;
    options.chaos.crash_after = 2;
    options.chaos_all_generations = true;
    options.chaos_seed = 17;
    options.max_worker_restarts = 2;
    options.partial_ok = true;
    Coordinator coordinator(spec, options);
    const CoordinatorResult result = coordinator.run();
    EXPECT_FALSE(result.completed);
    ASSERT_TRUE(result.partial) << result.error;
    EXPECT_TRUE(result.error.empty()) << result.error;
    EXPECT_GE(result.scenarios_committed, 2u);
    EXPECT_LT(result.scenarios_committed, spec.grid_size());

    const std::string text = coordinator.report().render_text();
    EXPECT_NE(text.find("partial: " +
                        std::to_string(result.scenarios_committed) + "/" +
                        std::to_string(spec.grid_size()) +
                        " scenarios committed; missing:"),
              std::string::npos)
        << text.substr(0, 200);
    const std::string json = coordinator.report().render_json();
    EXPECT_NE(json.find("\"partial\":{\"expected_count\":" +
                        std::to_string(spec.grid_size()) +
                        ",\"missing_ranges\":["),
              std::string::npos);
}

TEST(Coordinator, ChaosCheckpointTearAbortsThenResumeCompletes) {
    const JobSpec spec = chaos_spec();
    const auto [want_text, want_json] = reference_renderings(spec);
    const std::string ckpt = temp_path("chaos_tear_ckpt");

    {
        CoordinatorOptions options;
        options.workers = 2;
        options.batch = 1;
        options.checkpoint_path = ckpt;
        options.spool_path = temp_path("chaos_tear_spool_a");
        options.chaos.checkpoint_tear_after = 3;  // 3rd append lands torn
        options.chaos.checkpoint_tear_bytes = 7;
        options.chaos_seed = 18;
        Coordinator coordinator(spec, options);
        const CoordinatorResult result = coordinator.run();
        EXPECT_FALSE(result.completed);
        EXPECT_NE(result.error.find("chaos"), std::string::npos)
            << result.error;
        EXPECT_EQ(result.chaos_faults_injected, 1u);
    }
    // The journal must hold exactly the two complete records plus a
    // recoverable torn tail — the on-disk shape of a real crash mid-append.
    const CheckpointContents contents =
        load_checkpoint(ckpt, spec.fingerprint(), spec.grid_size());
    EXPECT_TRUE(contents.torn_tail);
    ASSERT_EQ(contents.batches.size(), 2u);
    {
        CoordinatorOptions options;
        options.workers = 2;
        options.batch = 1;
        options.checkpoint_path = ckpt;
        options.resume = true;
        options.spool_path = temp_path("chaos_tear_spool_b");
        Coordinator coordinator(spec, options);
        const CoordinatorResult result = coordinator.run();
        ASSERT_TRUE(result.completed) << result.error;
        EXPECT_EQ(result.scenarios_resumed, 2u);
        EXPECT_EQ(coordinator.report().render_text(), want_text);
        EXPECT_EQ(coordinator.report().render_json(), want_json);
    }
}

TEST(Coordinator, PreCheckpointCrashAbortsThenResumeCompletes) {
    const JobSpec spec = chaos_spec();
    const auto [want_text, want_json] = reference_renderings(spec);
    const std::string ckpt = temp_path("chaos_crash_ckpt");

    {
        CoordinatorOptions options;
        options.workers = 2;
        options.batch = 1;
        options.checkpoint_path = ckpt;
        options.spool_path = temp_path("chaos_crash_spool_a");
        options.chaos.crash_phase = CrashPhase::PreCheckpoint;
        options.chaos.crash_after = 2;  // die right before the 2nd append
        options.chaos_seed = 19;
        Coordinator coordinator(spec, options);
        const CoordinatorResult result = coordinator.run();
        EXPECT_FALSE(result.completed);
        EXPECT_NE(result.error.find("chaos"), std::string::npos)
            << result.error;
        EXPECT_EQ(result.chaos_faults_injected, 1u);
    }
    const CheckpointContents contents =
        load_checkpoint(ckpt, spec.fingerprint(), spec.grid_size());
    EXPECT_FALSE(contents.torn_tail);
    ASSERT_EQ(contents.batches.size(), 1u);
    {
        CoordinatorOptions options;
        options.workers = 2;
        options.batch = 1;
        options.checkpoint_path = ckpt;
        options.resume = true;
        options.spool_path = temp_path("chaos_crash_spool_b");
        Coordinator coordinator(spec, options);
        const CoordinatorResult result = coordinator.run();
        ASSERT_TRUE(result.completed) << result.error;
        EXPECT_EQ(result.scenarios_resumed, 1u);
        EXPECT_EQ(coordinator.report().render_text(), want_text);
        EXPECT_EQ(coordinator.report().render_json(), want_json);
    }
}

}  // namespace
}  // namespace refpga::svc
