#include <gtest/gtest.h>

#include <cmath>

#include "refpga/app/system.hpp"
#include "refpga/netlist/builder.hpp"
#include "refpga/reconfig/bitstream.hpp"
#include "refpga/reconfig/busmacro.hpp"
#include "refpga/reconfig/config_port.hpp"
#include "refpga/reconfig/controller.hpp"
#include "refpga/reconfig/scrubber.hpp"

namespace refpga::reconfig {
namespace {

using fabric::Device;
using fabric::PartName;
using fabric::Region;

// ---------------------------------------------------------------- bitstream

TEST(Bitstream, FullDeviceMatchesCatalog) {
    const Device dev(PartName::XC3S400);
    const Bitstream bs = Bitstream::full(dev, "full");
    EXPECT_EQ(bs.bits, dev.part().config_bits);
    EXPECT_TRUE(bs.full_device);
}

TEST(Bitstream, PartialScalesWithColumns) {
    const Device dev(PartName::XC3S400);
    const Bitstream narrow = Bitstream::partial(dev, "m", 0, 4);
    const Bitstream wide = Bitstream::partial(dev, "m", 0, 8);
    EXPECT_EQ(wide.bits, 2 * narrow.bits);
    EXPECT_LT(wide.bits, dev.full_bits());
}

TEST(Bitstream, ForRegionUsesWholeColumns) {
    const Device dev(PartName::XC3S400);
    // Frames span full height: a half-height region costs the same as the
    // full-height column range.
    const Bitstream half = Bitstream::for_region(dev, "m", Region{4, 8, 0, 10});
    const Bitstream full_height = Bitstream::for_region(dev, "m", Region{4, 8, 0, dev.rows()});
    EXPECT_EQ(half.bits, full_height.bits);
}

TEST(Bitstream, ZeroWidthColumnRangeRejected) {
    const Device dev(PartName::XC3S400);
    // Frames are column-granular: an empty range configures nothing and is a
    // contract violation, not a zero-bit bitstream.
    EXPECT_THROW((void)Bitstream::partial(dev, "m", 4, 4), ContractViolation);
    EXPECT_THROW((void)Bitstream::partial(dev, "m", 0, 0), ContractViolation);
    EXPECT_THROW((void)Bitstream::partial(dev, "m", 8, 4), ContractViolation);
}

TEST(Bitstream, LastColumnRangeIsOneColumn) {
    const Device dev(PartName::XC3S400);
    const Bitstream last = Bitstream::partial(dev, "m", dev.cols() - 1, dev.cols());
    EXPECT_EQ(last.bits, dev.bits_per_clb_column());
    EXPECT_EQ(last.x_begin, dev.cols() - 1);
    EXPECT_EQ(last.x_end, dev.cols());
    EXPECT_FALSE(last.full_device);
    // One past the device edge stays rejected.
    EXPECT_THROW((void)Bitstream::partial(dev, "m", dev.cols(), dev.cols() + 1),
                 ContractViolation);
}

TEST(Bitstream, AllColumnsPartialIsNotFullDevice) {
    const Device dev(PartName::XC3S400);
    const Bitstream all_cols = Bitstream::partial(dev, "m", 0, dev.cols());
    const Bitstream full = Bitstream::full(dev, "full");
    // A partial bitstream over every CLB column still configures less than
    // the full device: IOB/GCLK/BRAM columns only appear in the full
    // bitstream (Device::kExtraConfigColumns).
    EXPECT_EQ(all_cols.bits, dev.bits_per_clb_column() * dev.cols());
    EXPECT_LT(all_cols.bits, full.bits);
    EXPECT_FALSE(all_cols.full_device);
    EXPECT_TRUE(full.full_device);
    EXPECT_EQ(all_cols.x_begin, full.x_begin);
    EXPECT_EQ(all_cols.x_end, full.x_end);
}

TEST(Bitstream, BytesRoundUp) {
    Bitstream bs;
    bs.bits = 9;
    EXPECT_EQ(bs.bytes(), 2);
}

// ---------------------------------------------------------------- ports

TEST(ConfigPorts, IcapFasterThanJcap) {
    EXPECT_GT(icap_port().throughput_bps(), 10.0 * jcap_port().throughput_bps());
}

TEST(ConfigPorts, AcceleratedJcapFasterThanPlain) {
    EXPECT_GT(jcap_accelerated_port().throughput_bps(), jcap_port().throughput_bps());
}

TEST(ConfigPorts, ConfigTimeMatchesThroughput) {
    const Device dev(PartName::XC3S400);
    const Bitstream bs = Bitstream::partial(dev, "m", 0, 8);
    const ConfigPortSpec port = jcap_port();
    const double expected =
        port.setup_s + static_cast<double>(bs.bits) / port.throughput_bps();
    EXPECT_DOUBLE_EQ(port.config_time_s(bs), expected);
    EXPECT_GT(port.config_energy_mj(bs), 0.0);
}

TEST(ConfigPorts, DegenerateSpecsRejectedInsteadOfInfOrNan) {
    const Device dev(PartName::XC3S400);
    const Bitstream bs = Bitstream::partial(dev, "m", 0, 8);

    // Regression: a zero clock, width or efficiency used to drive
    // throughput_bps() to 0 and config_time_s/config_energy_mj to inf/NaN,
    // silently poisoning every schedule built on top.
    ConfigPortSpec port = jcap_port();
    port.clock_hz = 0.0;
    EXPECT_THROW(port.validate(), ContractViolation);
    EXPECT_THROW((void)port.config_time_s(bs), ContractViolation);
    EXPECT_THROW((void)port.config_energy_mj(bs), ContractViolation);

    port = jcap_port();
    port.width_bits = 0;
    EXPECT_THROW((void)port.config_time_s(bs), ContractViolation);
    port.width_bits = -8;
    EXPECT_THROW((void)port.config_time_s(bs), ContractViolation);

    port = jcap_port();
    port.efficiency = 0.0;
    EXPECT_THROW((void)port.config_time_s(bs), ContractViolation);
    port.efficiency = 1.5;
    EXPECT_THROW((void)port.config_time_s(bs), ContractViolation);

    port = jcap_port();
    port.setup_s = -1e-6;
    EXPECT_THROW((void)port.config_time_s(bs), ContractViolation);

    // Every catalog port stays valid and finite.
    for (const ConfigPortSpec& p :
         {icap_port(), selectmap_port(), jcap_port(), jcap_accelerated_port()}) {
        EXPECT_NO_THROW(p.validate()) << p.name;
        EXPECT_TRUE(std::isfinite(p.config_time_s(bs))) << p.name;
        EXPECT_TRUE(std::isfinite(p.config_energy_mj(bs))) << p.name;
    }
}

class PortOrdering : public ::testing::TestWithParam<PartName> {};

// Partial reconfiguration must beat full reconfiguration on every part and
// port: the whole point of module-wise swapping.
TEST_P(PortOrdering, PartialBeatsFullOnEveryPort) {
    const Device dev(GetParam());
    const Bitstream partial = Bitstream::partial(dev, "m", 0, dev.cols() / 3);
    const Bitstream full = Bitstream::full(dev, "full");
    for (const ConfigPortSpec& port :
         {icap_port(), selectmap_port(), jcap_port(), jcap_accelerated_port()})
        EXPECT_LT(port.config_time_s(partial), port.config_time_s(full)) << port.name;
}

INSTANTIATE_TEST_SUITE_P(Parts, PortOrdering,
                         ::testing::Values(PartName::XC3S200, PartName::XC3S400,
                                           PartName::XC3S1000));

// ---------------------------------------------------------------- controller

class ControllerTest : public ::testing::Test {
protected:
    ControllerTest() : dev_(PartName::XC3S400), ctrl_(dev_, jcap_port()) {
        ctrl_.add_slot("slot0", Region{18, 28, 0, dev_.rows()});
        ctrl_.register_module("slot0", "amp_phase");
        ctrl_.register_module("slot0", "capacity");
    }
    Device dev_;
    ReconfigController ctrl_;
};

TEST_F(ControllerTest, LoadTakesTimeAndEnergy) {
    const ReconfigEvent ev = ctrl_.load("slot0", "amp_phase");
    EXPECT_FALSE(ev.skipped);
    EXPECT_GT(ev.time_s, 0.0);
    EXPECT_GT(ev.energy_mj, 0.0);
    EXPECT_EQ(ev.bits, dev_.partial_bits(18, 28));
    EXPECT_EQ(ctrl_.resident_module("slot0"), "amp_phase");
}

TEST_F(ControllerTest, ReloadingResidentModuleIsFree) {
    (void)ctrl_.load("slot0", "amp_phase");
    const ReconfigEvent ev = ctrl_.load("slot0", "amp_phase");
    EXPECT_TRUE(ev.skipped);
    EXPECT_EQ(ev.time_s, 0.0);
    EXPECT_EQ(ctrl_.load_count(), 1);
}

TEST_F(ControllerTest, SwappingAccumulatesLedger) {
    (void)ctrl_.load("slot0", "amp_phase");
    (void)ctrl_.load("slot0", "capacity");
    (void)ctrl_.load("slot0", "amp_phase");
    EXPECT_EQ(ctrl_.load_count(), 3);
    EXPECT_GT(ctrl_.total_time_s(), 0.0);
    EXPECT_GT(ctrl_.total_energy_mj(), 0.0);
    EXPECT_EQ(ctrl_.events().size(), 3u);
}

TEST_F(ControllerTest, UnknownSlotOrModuleRejected) {
    EXPECT_THROW((void)ctrl_.load("nope", "amp_phase"), ContractViolation);
    EXPECT_THROW((void)ctrl_.load("slot0", "unregistered"), ContractViolation);
    EXPECT_THROW(ctrl_.register_module("nope", "m"), ContractViolation);
}

TEST_F(ControllerTest, OverlappingSlotsRejected) {
    EXPECT_THROW(ctrl_.add_slot("slot1", Region{20, 24, 0, dev_.rows()}),
                 ContractViolation);
    EXPECT_NO_THROW(ctrl_.add_slot("slot1", Region{0, 6, 0, dev_.rows()}));
}

TEST_F(ControllerTest, SlowFlashPacesTransfer) {
    FlashSpec slow;
    slow.read_bps = 1e6;  // slower than the JCAP port
    ReconfigController slow_ctrl(dev_, icap_port(), slow);
    slow_ctrl.add_slot("s", Region{0, 6, 0, dev_.rows()});
    slow_ctrl.register_module("s", "m");
    const ReconfigEvent ev = slow_ctrl.load("s", "m");
    const double flash_time = static_cast<double>(ev.bits) / slow.read_bps;
    EXPECT_NEAR(ev.time_s, flash_time, flash_time * 0.01);
}

// ---------------------------------------------------------------- bus macros

TEST(BusMacro, CrossPartitionWithoutMacroIsViolation) {
    netlist::Netlist nl;
    const auto clk = nl.add_input_port("clk", 1)[0];
    netlist::Builder b(nl, clk);
    const auto a = nl.add_input_port("a", 1);
    const auto mod = nl.add_partition("mod");
    const auto staged = b.not_(a[0]);  // static cell
    nl.set_current_partition(mod);
    (void)b.not_(staged);  // module cell fed directly from static: violation
    const auto violations = check_boundaries(nl);
    ASSERT_EQ(violations.size(), 1u);
    EXPECT_EQ(violations[0].from_partition, "static");
    EXPECT_EQ(violations[0].to_partition, "mod");
}

TEST(BusMacro, MacroedCrossingIsClean) {
    netlist::Netlist nl;
    const auto clk = nl.add_input_port("clk", 1)[0];
    netlist::Builder b(nl, clk);
    const auto a = nl.add_input_port("a", 4);
    const auto mod = nl.add_partition("mod");
    const auto bridged =
        bus_macro(b, a, netlist::PartitionId{0}, mod, "a_bridge");
    nl.set_current_partition(mod);
    nl.add_output_port("o", b.not_bus(bridged));
    EXPECT_TRUE(check_boundaries(nl).empty());
}

TEST(BusMacro, FullSystemNetlistHasNoBoundaryViolations) {
    // The complete measurement system (Fig. 2 architecture): every
    // static<->module crossing must run through a bus macro.
    const app::SystemNetlist sys = app::build_system_netlist({});
    EXPECT_TRUE(check_boundaries(sys.nl).empty());
}

// ---------------------------------------------------------------- scrubber

class ScrubberTest : public ::testing::Test {
protected:
    ScrubberTest() : dev_(PartName::XC3S400), memory_(dev_) {
        memory_.load_columns(0, dev_.cols(), 0xDEADBEEFCAFEULL);
    }
    Device dev_;
    ConfigMemory memory_;
};

TEST_F(ScrubberTest, CleanMemoryHasNoCorruption) {
    EXPECT_EQ(memory_.corrupted_count(), 0);
    Scrubber scrubber(memory_, jcap_port());
    const ScrubReport report = scrubber.scan(0, dev_.cols());
    EXPECT_EQ(report.upsets_detected, 0);
    EXPECT_EQ(report.columns_repaired, 0);
    EXPECT_GT(report.readback_s, 0.0);
    EXPECT_EQ(report.repair_s, 0.0);
}

TEST_F(ScrubberTest, DetectsAndRepairsInjectedUpset) {
    Rng rng(13);
    memory_.inject_upset(7, rng);
    EXPECT_TRUE(memory_.column_corrupted(7));
    EXPECT_EQ(memory_.corrupted_count(), 1);

    Scrubber scrubber(memory_, jcap_port());
    const ScrubReport report = scrubber.scan(0, dev_.cols());
    EXPECT_EQ(report.upsets_detected, 1);
    EXPECT_EQ(report.columns_repaired, 1);
    EXPECT_GT(report.repair_s, 0.0);
    EXPECT_EQ(memory_.corrupted_count(), 0);  // recovered
    EXPECT_FALSE(memory_.column_corrupted(7));
}

TEST_F(ScrubberTest, RepairRestoresExactGoldenContents) {
    const std::uint64_t before = memory_.read_column(3);
    Rng rng(5);
    memory_.inject_upset(3, rng);
    EXPECT_NE(memory_.read_column(3), before);
    Scrubber scrubber(memory_, icap_port());
    (void)scrubber.scan(0, dev_.cols());
    EXPECT_EQ(memory_.read_column(3), before);
}

TEST_F(ScrubberTest, SurvivesUpsetStorm) {
    // Property: whatever the upset pattern, one scan restores every column
    // that was ever loaded.
    Rng rng(99);
    for (int i = 0; i < 40; ++i)
        memory_.inject_upset(static_cast<int>(rng.next_below(
                                 static_cast<std::uint32_t>(dev_.cols()))),
                             rng);
    const int corrupted = memory_.corrupted_count();
    EXPECT_GT(corrupted, 0);
    Scrubber scrubber(memory_, jcap_accelerated_port());
    const ScrubReport report = scrubber.scan(0, dev_.cols());
    EXPECT_EQ(report.upsets_detected, corrupted);
    EXPECT_EQ(memory_.corrupted_count(), 0);
}

TEST_F(ScrubberTest, DoubleUpsetSameColumnMayCancelOrPersist) {
    // Two upsets on the same bit cancel; the scrubber only reports columns
    // that actually differ from golden.
    Rng rng_a(4);
    Rng rng_b(4);  // same seed: same bit
    memory_.inject_upset(11, rng_a);
    memory_.inject_upset(11, rng_b);
    EXPECT_FALSE(memory_.column_corrupted(11));
}

TEST_F(ScrubberTest, ScanOnlyCoversRequestedColumns) {
    Rng rng(2);
    memory_.inject_upset(20, rng);
    Scrubber scrubber(memory_, jcap_port());
    const ScrubReport report = scrubber.scan(0, 10);  // upset is outside
    EXPECT_EQ(report.upsets_detected, 0);
    EXPECT_TRUE(memory_.column_corrupted(20));
    EXPECT_EQ(report.columns_scanned, 10);
}

TEST_F(ScrubberTest, UnconfiguredColumnsAreIgnored) {
    ConfigMemory fresh(dev_);
    fresh.load_columns(0, 5, 1);
    Rng rng(1);
    // An upset in a never-configured column is not an error (nothing golden).
    Scrubber scrubber(fresh, jcap_port());
    const ScrubReport report = scrubber.scan(0, dev_.cols());
    EXPECT_EQ(report.upsets_detected, 0);
}

TEST_F(ScrubberTest, ScanBoundsValidated) {
    Scrubber scrubber(memory_, jcap_port());
    EXPECT_THROW((void)scrubber.scan(-1, 2), ContractViolation);
    EXPECT_THROW((void)scrubber.scan(0, dev_.cols() + 1), ContractViolation);
    EXPECT_THROW((void)scrubber.scan(3, 3), ContractViolation);   // empty
    EXPECT_THROW((void)scrubber.scan(10, 4), ContractViolation);  // inverted
    EXPECT_NO_THROW((void)scrubber.scan(0, dev_.cols()));
}

TEST_F(ScrubberTest, RepeatedUpsetsInOneColumnRepairedAsOne) {
    // An odd number of bit flips never cancels completely, whatever bits the
    // stream picks: the column reads back corrupted and one golden rewrite
    // clears all accumulated damage at once.
    Rng rng(21);
    memory_.inject_upset(9, rng);
    memory_.inject_upset(9, rng);
    memory_.inject_upset(9, rng);
    ASSERT_TRUE(memory_.column_corrupted(9));
    EXPECT_EQ(memory_.corrupted_count(), 1);

    Scrubber scrubber(memory_, jcap_port());
    const ScrubReport report = scrubber.scan(0, dev_.cols());
    EXPECT_EQ(report.upsets_detected, 1);
    EXPECT_EQ(report.columns_repaired, 1);
    EXPECT_FALSE(memory_.column_corrupted(9));
}

TEST_F(ScrubberTest, UpsetBehindTheReadbackPointerWaitsForNextPass) {
    // An upset landing after the scrubber has already read its column is
    // invisible to the rest of the pass; it is caught one pass later.
    Scrubber scrubber(memory_, jcap_port());
    const ScrubReport head = scrubber.scan(0, 1);  // column 0 read back clean
    EXPECT_EQ(head.upsets_detected, 0);

    Rng rng(8);
    memory_.inject_upset(0, rng);  // lands behind the pointer
    const ScrubReport tail = scrubber.scan(1, dev_.cols());  // rest of pass
    EXPECT_EQ(tail.upsets_detected, 0);
    EXPECT_TRUE(memory_.column_corrupted(0));  // survives the full pass

    const ScrubReport next_pass = scrubber.scan(0, 1);
    EXPECT_EQ(next_pass.upsets_detected, 1);
    EXPECT_EQ(next_pass.columns_repaired, 1);
    EXPECT_FALSE(memory_.column_corrupted(0));
}

TEST(ScrubberLatency, FasterPortDetectsSooner) {
    const Device dev(PartName::XC3S400);
    const double jcap_latency = mean_detection_latency_s(dev, jcap_port(), 0.1);
    const double icap_latency = mean_detection_latency_s(dev, icap_port(), 0.1);
    EXPECT_GT(jcap_latency, icap_latency);
    // Both are bounded below by half the scan period.
    EXPECT_GE(icap_latency, 0.05);
}

class ScrubPortSweep : public ::testing::TestWithParam<int> {};

TEST_P(ScrubPortSweep, FullScanFitsBetweenMeasurementCycles) {
    // The scrubber can run in the idle time of the 100 ms measurement cycle
    // on faster ports; on the plain JCAP a full-device scan exceeds it
    // (which is why the paper's [11] acceleration matters).
    const Device dev(PartName::XC3S400);
    ConfigMemory memory(dev);
    memory.load_columns(0, dev.cols(), 42);
    const auto ports = {jcap_port(), jcap_accelerated_port(), icap_port()};
    const auto& port = *(ports.begin() + GetParam());
    Scrubber scrubber(memory, port);
    const ScrubReport report = scrubber.scan(0, dev.cols());
    if (port.name == "icap")
        EXPECT_LT(report.total_s(), 0.1);
    else
        EXPECT_GT(report.total_s(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Ports, ScrubPortSweep, ::testing::Values(0, 1, 2));

TEST(BusMacro, RestoresBuilderPartition) {
    netlist::Netlist nl;
    const auto clk = nl.add_input_port("clk", 1)[0];
    netlist::Builder b(nl, clk);
    const auto a = nl.add_input_port("a", 1);
    const auto mod = nl.add_partition("mod");
    nl.set_current_partition(mod);
    (void)bus_macro(b, a, netlist::PartitionId{0}, mod, "x");
    EXPECT_EQ(nl.current_partition(), mod);
}

}  // namespace
}  // namespace refpga::reconfig
