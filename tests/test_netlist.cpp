#include <gtest/gtest.h>

#include "refpga/netlist/builder.hpp"
#include "refpga/netlist/drc.hpp"
#include "refpga/netlist/netlist.hpp"
#include "refpga/netlist/stats.hpp"

namespace refpga::netlist {
namespace {

Netlist make_with_clock(NetId& clk) {
    Netlist nl;
    clk = nl.add_input_port("clk", 1)[0];
    return nl;
}

// ---------------------------------------------------------------- netlist core

TEST(Netlist, LutCreatesDrivenOutput) {
    Netlist nl;
    const NetId a = nl.add_net("a");
    const NetId o = nl.add_lut(0x1, std::vector<NetId>{a}, "inv");
    EXPECT_TRUE(nl.net(o).driven());
    EXPECT_EQ(nl.net(a).sinks.size(), 1u);
}

TEST(Netlist, FfMarksClock) {
    NetId clk;
    Netlist nl = make_with_clock(clk);
    const NetId d = nl.add_input_port("d", 1)[0];
    (void)nl.add_ff(d, clk, NetId{}, "ff");
    EXPECT_TRUE(nl.net(clk).is_clock);
    EXPECT_EQ(nl.clock_nets().size(), 1u);
}

TEST(Netlist, LutRejectsTooManyInputs) {
    Netlist nl;
    std::vector<NetId> ins;
    for (int i = 0; i < 5; ++i) ins.push_back(nl.add_net("n"));
    EXPECT_THROW(nl.add_lut(0, ins, "bad"), ContractViolation);
}

TEST(Netlist, PortsAreRecorded) {
    Netlist nl;
    const auto bus = nl.add_input_port("in", 4);
    nl.add_output_port("out", bus);
    ASSERT_NE(nl.find_port("in"), nullptr);
    ASSERT_NE(nl.find_port("out"), nullptr);
    EXPECT_EQ(nl.find_port("in")->nets.size(), 4u);
    EXPECT_EQ(nl.find_port("missing"), nullptr);
}

TEST(Netlist, DuplicatePortNameRejected) {
    Netlist nl;
    (void)nl.add_input_port("p", 1);
    EXPECT_THROW(nl.add_input_port("p", 1), ContractViolation);
}

TEST(Netlist, ConstantsAreSingletons) {
    Netlist nl;
    EXPECT_EQ(nl.add_gnd(), nl.add_gnd());
    EXPECT_EQ(nl.add_vcc(), nl.add_vcc());
    EXPECT_NE(nl.add_gnd(), nl.add_vcc());
}

TEST(Netlist, PartitionsAssignCells) {
    Netlist nl;
    const PartitionId p1 = nl.add_partition("module1");
    const NetId a = nl.add_net("a");
    nl.set_current_partition(p1);
    const NetId o = nl.add_lut(0x1, std::vector<NetId>{a}, "inv");
    EXPECT_EQ(nl.cell(nl.net(o).driver.cell).partition, p1);
}

TEST(Netlist, BramRoundTripConfig) {
    NetId clk;
    Netlist nl = make_with_clock(clk);
    const auto addr = nl.add_input_port("addr", 4);
    BramConfig cfg;
    cfg.addr_bits = 4;
    cfg.data_bits = 8;
    cfg.init = {1, 2, 3};
    const auto out = nl.add_bram(cfg, addr, clk, NetId{}, {}, "rom");
    EXPECT_EQ(out.size(), 8u);
    const Cell& cell = nl.cell(nl.net(out[0]).driver.cell);
    EXPECT_EQ(nl.bram_config(cell).depth(), 16u);
    EXPECT_EQ(nl.bram_config(cell).init.size(), 16u);  // padded
}

// ---------------------------------------------------------------- builder

class BuilderTest : public ::testing::Test {
protected:
    BuilderTest() : clk_(), nl_(make_with_clock(clk_)), b_(nl_, clk_) {}
    NetId clk_;
    Netlist nl_;
    Builder b_;
};

TEST_F(BuilderTest, ConstantWidthAndCells) {
    const Bus c = b_.constant(0b1010, 4);
    EXPECT_EQ(c.size(), 4u);
    EXPECT_EQ(nl_.net(c[0]).driver.cell, nl_.net(c[2]).driver.cell);  // both gnd
    EXPECT_EQ(nl_.net(c[1]).driver.cell, nl_.net(c[3]).driver.cell);  // both vcc
}

TEST_F(BuilderTest, AddCreatesExpectedLutCount) {
    const Bus a = nl_.add_input_port("a", 8);
    const Bus x = nl_.add_input_port("x", 8);
    const std::size_t before = count_kind(nl_, CellKind::Lut);
    (void)b_.add(a, x);
    // 8 sum LUTs + 7 carry LUTs.
    EXPECT_EQ(count_kind(nl_, CellKind::Lut) - before, 15u);
}

TEST_F(BuilderTest, RegUsesFfPerBit) {
    const Bus a = nl_.add_input_port("a", 5);
    (void)b_.reg(a);
    EXPECT_EQ(count_kind(nl_, CellKind::Ff), 5u);
}

TEST_F(BuilderTest, ScopedNames) {
    b_.push_scope("top");
    b_.push_scope("sub");
    const NetId o = b_.not_(nl_.add_input_port("a", 1)[0]);
    b_.pop_scope();
    b_.pop_scope();
    EXPECT_EQ(nl_.cell(nl_.net(o).driver.cell).name.rfind("top/sub/", 0), 0u);
}

TEST_F(BuilderTest, SliceAndConcat) {
    const Bus a = nl_.add_input_port("a", 8);
    const Bus hi = Builder::slice(a, 4, 4);
    EXPECT_EQ(hi[0], a[4]);
    const Bus cat = Builder::concat(Builder::slice(a, 0, 4), hi);
    EXPECT_EQ(cat.size(), 8u);
    EXPECT_EQ(cat[7], a[7]);
}

TEST_F(BuilderTest, ExtendWidths) {
    const Bus a = nl_.add_input_port("a", 3);
    EXPECT_EQ(b_.zero_extend(a, 6).size(), 6u);
    const Bus s = b_.sign_extend(a, 6);
    EXPECT_EQ(s[5], a[2]);
}

TEST_F(BuilderTest, CounterPassesDrc) {
    (void)b_.counter(4);
    EXPECT_TRUE(run_drc(nl_).empty());
}

TEST_F(BuilderTest, FeedbackRegWidthMismatchRejected) {
    EXPECT_THROW(b_.feedback_reg(4, [&](const Bus&) { return b_.constant(0, 3); }),
                 ContractViolation);
}

TEST_F(BuilderTest, RomLutUsesNoBram) {
    const Bus addr = nl_.add_input_port("addr", 6);
    (void)b_.rom_lut(addr, {1, 2, 3, 4}, 8);
    EXPECT_EQ(count_kind(nl_, CellKind::Bram), 0u);
    EXPECT_GT(count_kind(nl_, CellKind::Lut), 0u);
}

TEST_F(BuilderTest, MulUsesOneMult18) {
    const Bus a = nl_.add_input_port("a", 12);
    const Bus x = nl_.add_input_port("x", 10);
    (void)b_.mul_mult18(a, x, 22, 0);
    EXPECT_EQ(count_kind(nl_, CellKind::Mult18), 1u);
}

// ---------------------------------------------------------------- drc

TEST(Drc, CleanDesignHasNoIssues) {
    NetId clk;
    Netlist nl = make_with_clock(clk);
    Builder b(nl, clk);
    const Bus a = nl.add_input_port("a", 4);
    nl.add_output_port("o", b.reg(b.increment(a)));
    EXPECT_TRUE(run_drc(nl).empty());
    EXPECT_NO_THROW(require_clean(nl));
}

TEST(Drc, DetectsUndrivenNet) {
    Netlist nl;
    const NetId floating = nl.add_net("floating");
    (void)nl.add_lut(0x1, std::vector<NetId>{floating}, "inv");
    const auto issues = run_drc(nl);
    ASSERT_FALSE(issues.empty());
    EXPECT_EQ(issues[0].kind, DrcIssue::Kind::UndrivenNet);
    EXPECT_THROW(require_clean(nl), ContractViolation);
}

TEST(Drc, DetectsCombinationalLoop) {
    Netlist nl;
    const NetId seed = nl.add_input_port("a", 1)[0];
    const NetId o1 = nl.add_lut(0x1, std::vector<NetId>{seed}, "l1");
    // Manually wire l1's input to its own output to create a loop.
    Cell& c = nl.cell(nl.net(o1).driver.cell);
    nl.net(seed).sinks.clear();
    c.inputs[0] = o1;
    nl.net(o1).sinks.push_back(PinRef{nl.net(o1).driver.cell, 0});
    const auto issues = run_drc(nl);
    bool found = false;
    for (const auto& i : issues)
        if (i.kind == DrcIssue::Kind::CombinationalLoop) found = true;
    EXPECT_TRUE(found);
}

TEST(Drc, DetectsClockUsedAsData) {
    NetId clk;
    Netlist nl = make_with_clock(clk);
    const NetId d = nl.add_input_port("d", 1)[0];
    (void)nl.add_ff(d, clk, NetId{}, "ff");
    (void)nl.add_lut(0x1, std::vector<NetId>{clk}, "bad");
    const auto issues = run_drc(nl);
    bool found = false;
    for (const auto& i : issues)
        if (i.kind == DrcIssue::Kind::ClockUsedAsData) found = true;
    EXPECT_TRUE(found);
}

// ---------------------------------------------------------------- stats

TEST(Stats, CountsPerPartition) {
    NetId clk;
    Netlist nl = make_with_clock(clk);
    Builder b(nl, clk);
    const Bus a = nl.add_input_port("a", 4);
    (void)b.reg(b.not_bus(a));  // 4 LUTs + 4 FFs in static
    const PartitionId p1 = nl.add_partition("mod");
    nl.set_current_partition(p1);
    (void)b.not_bus(a);  // 4 LUTs in mod
    const auto stats = partition_stats(nl);
    ASSERT_EQ(stats.size(), 2u);
    EXPECT_EQ(stats[0].luts, 4u);
    EXPECT_EQ(stats[0].ffs, 4u);
    EXPECT_EQ(stats[1].luts, 4u);
    EXPECT_EQ(stats[1].ffs, 0u);
}

TEST(Stats, SliceEstimatePacksTwoPerSlice) {
    PartitionStats s;
    s.luts = 10;
    s.ffs = 4;
    EXPECT_EQ(s.slices(), 5u);
    s.ffs = 13;
    EXPECT_EQ(s.slices(), 7u);
}

TEST(Stats, TotalMatchesSum) {
    NetId clk;
    Netlist nl = make_with_clock(clk);
    Builder b(nl, clk);
    (void)b.counter(8);
    const auto total = total_stats(nl);
    const auto per = partition_stats(nl);
    std::size_t luts = 0;
    for (const auto& p : per) luts += p.luts;
    EXPECT_EQ(total.luts, luts);
    EXPECT_EQ(total.ffs, 8u);
}

}  // namespace
}  // namespace refpga::netlist
