#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>

#include "refpga/common/contracts.hpp"
#include "refpga/fleet/campaign.hpp"
#include "refpga/fleet/report.hpp"
#include "refpga/fleet/scenario.hpp"
#include "refpga/fleet/thread_pool.hpp"

namespace refpga::fleet {
namespace {

using app::SystemVariant;
using fabric::PartName;

// A 2x3x2x2 = 24-scenario sweep over the hardware variants (kept off the
// soft-core so the suite stays fast). cycles=2 still exercises reconfig
// module swapping twice.
std::vector<Scenario> acceptance_sweep(std::uint64_t seed = 77) {
    return SweepBuilder{}
        .variants({SystemVariant::MonolithicHw, SystemVariant::ReconfiguredHw})
        .parts({PartName::XC3S200, PartName::XC3S400, PartName::XC3S1000})
        .ports({PortKind::Jcap, PortKind::JcapAccelerated})
        .noise_levels({1e-3, 5e-3})
        .cycles(2)
        .campaign_seed(seed)
        .build();
}

// ---------------------------------------------------------------- sweeps

TEST(SweepBuilder, ExpandsFullCartesianGrid) {
    SweepBuilder builder;
    builder.variants({SystemVariant::Software, SystemVariant::ReconfiguredHw})
        .parts({PartName::XC3S200, PartName::XC3S400, PartName::XC3S1000})
        .ports({PortKind::Jcap, PortKind::Icap})
        .noise_levels({1e-3, 2e-3})
        .fills({{0.1, 0.9}, {0.9, 0.1}, {0.5, 0.5}});
    EXPECT_EQ(builder.grid_size(), 2u * 3u * 2u * 2u * 3u);
    const std::vector<Scenario> grid = builder.build();
    ASSERT_EQ(grid.size(), builder.grid_size());

    std::set<std::string> names;
    for (const Scenario& s : grid) names.insert(s.name);
    EXPECT_EQ(names.size(), grid.size()) << "scenario names must be unique";
}

TEST(SweepBuilder, SeedsAreDeterministicAndDistinct) {
    const std::vector<Scenario> a = acceptance_sweep(77);
    const std::vector<Scenario> b = acceptance_sweep(77);
    const std::vector<Scenario> c = acceptance_sweep(78);
    ASSERT_EQ(a.size(), b.size());
    std::set<std::uint64_t> seeds;
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].seed, b[i].seed);
        EXPECT_EQ(a[i].name, b[i].name);
        EXPECT_NE(a[i].seed, c[i].seed) << "campaign seed must move every scenario";
        seeds.insert(a[i].seed);
    }
    EXPECT_EQ(seeds.size(), a.size()) << "per-scenario seeds must be distinct";
}

TEST(SweepBuilder, ScenarioSeedIsPureFunction) {
    EXPECT_EQ(scenario_seed(1, 0), scenario_seed(1, 0));
    EXPECT_NE(scenario_seed(1, 0), scenario_seed(1, 1));
    EXPECT_NE(scenario_seed(1, 0), scenario_seed(2, 0));
}

TEST(SweepBuilder, EmptyAxisRejected) {
    SweepBuilder builder;
    EXPECT_THROW(builder.parts({}), ContractViolation);
    EXPECT_THROW(builder.noise_levels({}), ContractViolation);
}

TEST(Ports, KindsMapToSpecs) {
    EXPECT_EQ(make_port(PortKind::Jcap).name, reconfig::jcap_port().name);
    EXPECT_EQ(make_port(PortKind::Icap).name, reconfig::icap_port().name);
    EXPECT_EQ(make_port(PortKind::SelectMap).name, reconfig::selectmap_port().name);
    EXPECT_EQ(make_port(PortKind::JcapAccelerated).name,
              reconfig::jcap_accelerated_port().name);
    EXPECT_STREQ(port_kind_name(PortKind::Jcap), "jcap");
}

TEST(FillProfile, LinearRampEndpoints) {
    const FillProfile fill{0.2, 0.8};
    EXPECT_DOUBLE_EQ(fill.level_at(0, 4), 0.2);
    EXPECT_DOUBLE_EQ(fill.level_at(3, 4), 0.8);
    EXPECT_DOUBLE_EQ(fill.level_at(0, 1), 0.2);  // single cycle: start level
}

// ---------------------------------------------------------------- thread pool

TEST(ThreadPool, RunsEveryJob) {
    std::atomic<int> counter{0};
    ThreadPool pool(4);
    EXPECT_EQ(pool.thread_count(), 4);
    for (int i = 0; i < 100; ++i)
        pool.submit([&counter] { counter.fetch_add(1); });
    pool.wait_idle();
    EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns) {
    ThreadPool pool(2);
    pool.wait_idle();  // must not hang
}

TEST(ThreadPool, SurvivesThrowingJob) {
    std::atomic<int> counter{0};
    ThreadPool pool(2);
    pool.submit([] { throw std::runtime_error("boom"); });
    for (int i = 0; i < 10; ++i)
        pool.submit([&counter] { counter.fetch_add(1); });
    pool.wait_idle();
    EXPECT_EQ(counter.load(), 10);
}

TEST(ThreadPool, DestructorDrainsQueuedJobs) {
    std::atomic<int> counter{0};
    {
        ThreadPool pool(1);
        for (int i = 0; i < 20; ++i)
            pool.submit([&counter] { counter.fetch_add(1); });
    }
    EXPECT_EQ(counter.load(), 20);
}

// ---------------------------------------------------------------- metrics

TEST(MetricSummary, StatsOnKnownData) {
    const MetricSummary s = MetricSummary::of({5.0, 1.0, 3.0, 2.0, 4.0});
    EXPECT_DOUBLE_EQ(s.min, 1.0);
    EXPECT_DOUBLE_EQ(s.max, 5.0);
    EXPECT_DOUBLE_EQ(s.mean, 3.0);
    EXPECT_DOUBLE_EQ(s.p50, 3.0);
    EXPECT_DOUBLE_EQ(s.p95, 5.0);
    EXPECT_EQ(s.count, 5u);
}

TEST(MetricSummary, EmptyIsAllZero) {
    const MetricSummary s = MetricSummary::of({});
    EXPECT_EQ(s.count, 0u);
    EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(MetricSummary, UnknownKeyRejected) {
    ScenarioOutcome o;
    EXPECT_THROW((void)outcome_metric(o, "not_a_metric"), ContractViolation);
}

// ---------------------------------------------------------------- device fit

TEST(VariantFit, ReconfigurationShrinksResidentSet) {
    const VariantFit mono = variant_fit(SystemVariant::MonolithicHw);
    const VariantFit reconf = variant_fit(SystemVariant::ReconfiguredHw);
    const VariantFit sw = variant_fit(SystemVariant::Software);
    EXPECT_LT(reconf.resident_slices, mono.resident_slices);
    EXPECT_LT(sw.resident_slices, reconf.resident_slices);
    ASSERT_TRUE(mono.fitted.has_value());
    ASSERT_TRUE(reconf.fitted.has_value());
    // The paper's headline: reconfiguration moves the fit to a smaller part.
    EXPECT_LT(fabric::part(*reconf.fitted).slices, fabric::part(*mono.fitted).slices);
}

// ---------------------------------------------------------------- campaigns

TEST(Campaign, ReportIsByteIdenticalAcrossThreadCounts) {
    const std::vector<Scenario> sweep = acceptance_sweep();
    ASSERT_GE(sweep.size(), 24u);

    const CampaignResult serial = CampaignRunner(1).run(sweep);
    const CampaignResult parallel4 = CampaignRunner(4).run(sweep);
    const CampaignResult parallel3 = CampaignRunner(3).run(sweep);

    const std::string json1 = CampaignReport::from(serial).render_json();
    const std::string json4 = CampaignReport::from(parallel4).render_json();
    const std::string json3 = CampaignReport::from(parallel3).render_json();
    EXPECT_EQ(json1, json4);
    EXPECT_EQ(json1, json3);
    EXPECT_EQ(CampaignReport::from(serial).render_text(),
              CampaignReport::from(parallel4).render_text());
    EXPECT_EQ(serial.failure_count(), 0u);
}

TEST(Campaign, FailingScenarioIsIsolated) {
    std::vector<Scenario> sweep =
        SweepBuilder{}
            .variants({SystemVariant::ReconfiguredHw})
            .ports({PortKind::Jcap, PortKind::JcapAccelerated})
            .noise_levels({1e-3, 2e-3})
            .cycles(1)
            .campaign_seed(5)
            .build();
    ASSERT_EQ(sweep.size(), 4u);
    sweep[1].cycles = 0;  // invalid: the runner's precondition will throw

    const CampaignResult result = CampaignRunner(2).run(sweep);
    ASSERT_EQ(result.outcomes.size(), 4u);
    EXPECT_EQ(result.failure_count(), 1u);
    EXPECT_FALSE(result.outcomes[1].ok);
    EXPECT_NE(result.outcomes[1].error.find("precondition"), std::string::npos);
    for (const std::size_t i : {0u, 2u, 3u}) {
        EXPECT_TRUE(result.outcomes[i].ok) << "scenario " << i;
        EXPECT_GT(result.outcomes[i].cycle_busy_ms, 0.0);
    }

    const CampaignReport report = CampaignReport::from(result);
    EXPECT_EQ(report.failure_count(), 1u);
    const std::string json = report.render_json();
    EXPECT_NE(json.find("\"failure_count\":1"), std::string::npos);
    EXPECT_NE(json.find("\"ok\":false"), std::string::npos);
}

TEST(Campaign, NonStandardThrowBecomesFailureRecord) {
    std::vector<Scenario> sweep = SweepBuilder{}
                                      .variants({SystemVariant::ReconfiguredHw})
                                      .noise_levels({1e-3, 2e-3})
                                      .cycles(1)
                                      .campaign_seed(9)
                                      .build();
    ASSERT_EQ(sweep.size(), 2u);

    // A scenario whose setup throws something outside the std::exception
    // hierarchy must still become a failure record instead of escaping into
    // the worker thread and taking the campaign down.
    CampaignOptions options;
    options.threads = 2;
    options.scenario_probe = [&](const Scenario& s) {
        if (s.name == sweep[1].name) throw 42;  // NOLINT: deliberately non-standard
    };
    const CampaignResult result = CampaignRunner(options).run(sweep);
    ASSERT_EQ(result.outcomes.size(), 2u);
    EXPECT_TRUE(result.outcomes[0].ok);
    EXPECT_FALSE(result.outcomes[1].ok);
    EXPECT_EQ(result.outcomes[1].error, "non-standard exception");
    EXPECT_EQ(result.failure_count(), 1u);
}

TEST(Campaign, OutcomesCarryPhysicallySensibleMetrics) {
    const std::vector<Scenario> sweep =
        SweepBuilder{}
            .variants({SystemVariant::MonolithicHw, SystemVariant::ReconfiguredHw})
            .parts({PartName::XC3S400})
            .cycles(3)
            .campaign_seed(11)
            .build();
    const CampaignResult result = CampaignRunner(2).run(sweep);
    ASSERT_EQ(result.failure_count(), 0u);

    const ScenarioOutcome* mono = nullptr;
    const ScenarioOutcome* reconf = nullptr;
    for (const ScenarioOutcome& o : result.outcomes) {
        if (o.scenario.variant == SystemVariant::MonolithicHw) mono = &o;
        if (o.scenario.variant == SystemVariant::ReconfiguredHw) reconf = &o;
    }
    ASSERT_NE(mono, nullptr);
    ASSERT_NE(reconf, nullptr);

    // Monolithic never reconfigures; the reconfigured system pays overhead.
    EXPECT_DOUBLE_EQ(mono->reconfig_ms_per_cycle, 0.0);
    EXPECT_GT(reconf->reconfig_ms_per_cycle, 0.0);
    EXPECT_GT(reconf->reconfig_energy_mj, 0.0);
    // The reconfigured resident set fits the XC3S400; monolithic does not
    // (the paper needs an XC3S1000 for it).
    EXPECT_TRUE(reconf->device_fits);
    EXPECT_FALSE(mono->device_fits);
    // Both measure the level to a few percent over the ramp.
    EXPECT_LT(reconf->level_error_mean, 0.05);
    EXPECT_GT(reconf->static_mw, 0.0);
    EXPECT_GT(reconf->dynamic_mw, 0.0);
}

TEST(Campaign, GroupsCoverEveryAxisValue) {
    const std::vector<Scenario> sweep = acceptance_sweep();
    const CampaignReport report =
        CampaignReport::from(CampaignRunner(2).run(sweep));

    std::size_t variant_groups = 0;
    std::size_t part_groups = 0;
    for (const CampaignReport::Group& g : report.groups()) {
        if (g.axis == "variant") ++variant_groups;
        if (g.axis == "part") ++part_groups;
        std::size_t covered = 0;
        for (const std::size_t i : g.indices) covered += i < report.outcomes().size();
        EXPECT_EQ(covered, g.indices.size());
    }
    EXPECT_EQ(variant_groups, 2u);
    EXPECT_EQ(part_groups, 3u);

    const MetricSummary busy = report.summary("cycle_busy_ms");
    EXPECT_EQ(busy.count, sweep.size());
    EXPECT_GT(busy.mean, 0.0);
    EXPECT_LE(busy.min, busy.p50);
    EXPECT_LE(busy.p50, busy.p95);
    EXPECT_LE(busy.p95, busy.max);
}

}  // namespace
}  // namespace refpga::fleet
