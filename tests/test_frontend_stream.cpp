// Parity suite for the block-streaming front end: the fused run_block_*
// kernel, the block-of-1 step_*() wrappers, the system sample window and
// whole campaign reports must stay bit-identical to the retained per-sample
// reference path for every block partitioning — including the tank-noise RNG
// draw order and fault-armed runs. Any divergence here means the streaming
// refactor changed the signal, not just its batching.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "refpga/analog/frontend.hpp"
#include "refpga/analog/sample_block.hpp"
#include "refpga/app/hw_modules.hpp"
#include "refpga/app/system.hpp"
#include "refpga/common/contracts.hpp"
#include "refpga/fleet/campaign.hpp"
#include "refpga/fleet/report.hpp"
#include "refpga/fleet/scenario.hpp"

namespace refpga {
namespace {

constexpr int kBlockSizes[] = {1, 7, 64, 4096};

// ---------------------------------------------------------- sinus generator

TEST(SinusGenStream, BlockBitsMatchPerTickSteps) {
    const std::size_t ticks = 1000;
    app::SinusGenModel per_tick{app::AppParams{}};
    app::SinusGenModel block{app::AppParams{}};
    std::vector<std::uint8_t> bits(ticks);
    std::vector<std::uint8_t> codes(ticks);
    block.run_block_bits(ticks, bits.data());
    app::SinusGenModel block2{app::AppParams{}};
    block2.run_block_codes(ticks, codes.data());
    for (std::size_t i = 0; i < ticks; ++i) {
        const app::SinusGenModel::Step s = per_tick.step();
        EXPECT_EQ(bits[i], s.ds_bit ? 1 : 0) << "tick " << i;
        EXPECT_EQ(codes[i], static_cast<std::uint8_t>(s.code8)) << "tick " << i;
    }
}

// --------------------------------------------------------------- front end

struct PcmStream {
    std::vector<std::int32_t> meas;
    std::vector<std::int32_t> ref;
};

// Drive sequence shared by every partitioning: the real sinus generator's
// delta-sigma bits or DAC codes, so the parity run exercises the same
// waveforms the system does.
std::vector<std::uint8_t> make_drive(std::size_t ticks, bool ds_bits) {
    app::SinusGenModel gen{app::AppParams{}};
    std::vector<std::uint8_t> drive(ticks);
    if (ds_bits)
        gen.run_block_bits(ticks, drive.data());
    else
        gen.run_block_codes(ticks, drive.data());
    return drive;
}

analog::FrontEndConfig make_config(double noise_rms) {
    analog::FrontEndConfig config;
    config.tank.noise_rms_v = noise_rms;
    return config;
}

PcmStream reference_stream(const analog::FrontEndConfig& config,
                           const std::vector<std::uint8_t>& drive, bool ds_bits) {
    analog::FrontEnd frontend(config, 42);
    frontend.tank().set_level(0.6);
    PcmStream stream;
    for (std::uint8_t d : drive) {
        const auto pcm = ds_bits ? frontend.step_ds_bit_reference(d != 0)
                                 : frontend.step_code8_reference(d);
        if (pcm) {
            stream.meas.push_back(pcm->meas);
            stream.ref.push_back(pcm->ref);
        }
    }
    return stream;
}

void expect_block_parity(double noise_rms, bool ds_bits) {
    // Deliberately not a multiple of any tested block size, so every
    // partitioning ends on a ragged tail and mid-decimation ADC phase.
    const std::size_t ticks = 12347;
    const std::vector<std::uint8_t> drive = make_drive(ticks, ds_bits);
    const analog::FrontEndConfig config = make_config(noise_rms);
    const PcmStream want = reference_stream(config, drive, ds_bits);
    ASSERT_EQ(want.meas.size(), ticks / static_cast<std::size_t>(config.adc_decimation));

    for (int block_size : kBlockSizes) {
        analog::FrontEnd frontend(config, 42);
        frontend.tank().set_level(0.6);
        analog::SampleBlock block;
        for (std::size_t at = 0; at < ticks;) {
            const std::size_t n =
                std::min<std::size_t>(static_cast<std::size_t>(block_size), ticks - at);
            const std::span<const std::uint8_t> chunk(drive.data() + at, n);
            if (ds_bits)
                frontend.run_block_ds(chunk, block);
            else
                frontend.run_block_code8(chunk, block);
            at += n;
        }
        EXPECT_EQ(block.meas, want.meas) << "block size " << block_size;
        EXPECT_EQ(block.ref, want.ref) << "block size " << block_size;
    }
}

TEST(FrontEndStream, DsDriveMatchesReferenceAcrossBlockSizes) {
    expect_block_parity(1e-3, true);
}

TEST(FrontEndStream, DsDriveNoiselessMatchesReference) {
    expect_block_parity(0.0, true);
}

TEST(FrontEndStream, Code8DriveMatchesReferenceAcrossBlockSizes) {
    expect_block_parity(1e-3, false);
}

TEST(FrontEndStream, Code8DriveNoiselessMatchesReference) {
    expect_block_parity(0.0, false);
}

TEST(FrontEndStream, StepWrappersMatchReferencePath) {
    const std::vector<std::uint8_t> drive = make_drive(4000, true);
    analog::FrontEnd wrapped(make_config(1e-3), 9);
    analog::FrontEnd reference(make_config(1e-3), 9);
    wrapped.tank().set_level(0.3);
    reference.tank().set_level(0.3);
    for (std::uint8_t d : drive) {
        const auto a = wrapped.step_ds_bit(d != 0);
        const auto b = reference.step_ds_bit_reference(d != 0);
        ASSERT_EQ(a.has_value(), b.has_value());
        if (a) {
            EXPECT_EQ(a->meas, b->meas);
            EXPECT_EQ(a->ref, b->ref);
        }
    }
}

TEST(FrontEndStream, TicksForPcmTracksDecimationPhase) {
    analog::FrontEnd frontend;  // adc_decimation = 5
    EXPECT_EQ(frontend.ticks_for_pcm(0), 0);
    EXPECT_EQ(frontend.ticks_for_pcm(3), 15);
    // Two ticks in (no PCM yet): the next pair needs only three more.
    (void)frontend.step_ds_bit(true);
    (void)frontend.step_ds_bit(false);
    EXPECT_EQ(frontend.ticks_for_pcm(1), 3);
    EXPECT_EQ(frontend.ticks_for_pcm(2), 8);
    // A block of exactly ticks_for_pcm(n) ticks fires exactly n pairs.
    analog::SampleBlock block;
    const std::vector<std::uint8_t> bits(
        static_cast<std::size_t>(frontend.ticks_for_pcm(4)), 1);
    EXPECT_EQ(frontend.run_block_ds(bits, block), 4u);
}

TEST(FrontEndStream, RunBlockAppendsWithoutShrinking) {
    analog::FrontEnd frontend(make_config(0.0), 1);
    analog::SampleBlock block;
    block.reserve_pcm(1024);
    const std::vector<std::uint8_t> bits(25, 1);
    EXPECT_EQ(frontend.run_block_ds(bits, block), 5u);
    EXPECT_EQ(frontend.run_block_ds(bits, block), 5u);
    EXPECT_EQ(block.pcm_size(), 10u);
    EXPECT_GE(block.meas.capacity(), 1024u);
    block.clear_pcm();
    EXPECT_EQ(block.pcm_size(), 0u);
    EXPECT_GE(block.meas.capacity(), 1024u);
}

// ------------------------------------------------------- config validation

TEST(FrontEndConfig, ValidateAcceptsDefaults) {
    EXPECT_NO_THROW(analog::FrontEndConfig{}.validate());
}

TEST(FrontEndConfig, ValidateRejectsDegenerateConfigs) {
    const auto reject = [](auto mutate) {
        analog::FrontEndConfig config;
        mutate(config);
        EXPECT_THROW(config.validate(), ContractViolation);
        // The constructor applies the same gate before any pole math runs.
        EXPECT_THROW(analog::FrontEnd{config}, ContractViolation);
    };
    reject([](analog::FrontEndConfig& c) { c.modulator_hz = 0.0; });
    reject([](analog::FrontEndConfig& c) { c.modulator_hz = -16e6; });
    reject([](analog::FrontEndConfig& c) { c.signal_hz = c.modulator_hz / 2.0; });
    reject([](analog::FrontEndConfig& c) { c.adc_decimation = 1; });
    reject([](analog::FrontEndConfig& c) { c.adc_decimation = 5000; });
    reject([](analog::FrontEndConfig& c) { c.adc_bits = 2; });
    reject([](analog::FrontEndConfig& c) { c.recon_cutoff_hz = c.modulator_hz; });
    reject([](analog::FrontEndConfig& c) { c.antialias_cutoff_hz = 0.0; });
    reject([](analog::FrontEndConfig& c) { c.tank.noise_rms_v = -1e-3; });
    reject([](analog::FrontEndConfig& c) { c.tank.c_full_pf = c.tank.c_empty_pf; });
}

// ------------------------------------------------------------------ system

// Every field that feeds reports, campaigns or downstream decisions, folded
// into one comparable string (exact doubles via hexfloat).
std::string report_fingerprint(const app::CycleReport& r) {
    std::ostringstream os;
    os << std::hexfloat;
    os << r.result.meas.amplitude << ' ' << r.result.meas.phase << ' '
       << r.result.ref.amplitude << ' ' << r.result.ref.phase << ' '
       << r.result.cap.ratio_q12 << ' ' << r.result.cap.cos_q11 << ' '
       << r.result.cap.cap_pf_q4 << ' ' << r.result.level.level_q15 << ' '
       << r.result.level.alarm_high << r.result.level.alarm_low << ' '
       << r.level << ' ' << r.capacitance_pf << ' ' << r.sampling_s << ' '
       << r.processing_s << ' ' << r.reconfig_s << ' ' << r.scrub_s << ' '
       << r.repair_s << ' ' << r.upsets_detected << ' ' << r.columns_repaired
       << ' ' << r.plausibility_rejected << r.fallback << r.fabric_corrupted;
    return os.str();
}

std::vector<std::string> run_fingerprints(app::SystemOptions options,
                                          int stream_block_ticks, int cycles) {
    options.stream_block_ticks = stream_block_ticks;
    app::MeasurementSystem system(options, 11);
    std::vector<std::string> prints;
    prints.reserve(static_cast<std::size_t>(cycles));
    for (int c = 0; c < cycles; ++c) {
        system.set_true_level(0.2 + 0.15 * c);
        prints.push_back(report_fingerprint(system.run_cycle()));
    }
    return prints;
}

void expect_system_parity(const app::SystemOptions& options, int cycles) {
    const std::vector<std::string> want = run_fingerprints(options, 0, cycles);
    for (int block_size : kBlockSizes)
        EXPECT_EQ(run_fingerprints(options, block_size, cycles), want)
            << "stream_block_ticks " << block_size;
}

TEST(SystemStream, CycleReportsIdenticalAcrossBlockSizes) {
    expect_system_parity(app::SystemOptions{}, 3);
}

TEST(SystemStream, ExternalDacCycleReportsIdentical) {
    app::SystemOptions options;
    options.use_ds_dac = false;
    expect_system_parity(options, 2);
}

TEST(SystemStream, SoftwareVariantCycleReportsIdentical) {
    app::SystemOptions options;
    options.variant = app::SystemVariant::Software;
    expect_system_parity(options, 2);
}

TEST(SystemStream, FaultArmedCycleReportsIdentical) {
    // Faults draw from their own RNG streams (plan + glitch placement); the
    // streaming path must not perturb any of them.
    app::SystemOptions options;
    options.fault.upset_rate_per_column_s = 0.5;
    options.fault.load_corruption_prob = 0.2;
    options.fault.glitch_prob_per_cycle = 0.5;
    expect_system_parity(options, 4);

    // Fault bookkeeping (not only the per-cycle reports) must agree too.
    const auto stats_for = [&](int block_ticks) {
        app::SystemOptions o = options;
        o.stream_block_ticks = block_ticks;
        app::MeasurementSystem system(o, 11);
        for (int c = 0; c < 4; ++c) {
            system.set_true_level(0.2 + 0.15 * c);
            (void)system.run_cycle();
        }
        const fault::FaultStats& fs = system.fault_stats();
        std::ostringstream os;
        os << fs.upsets_injected << ' ' << fs.upsets_detected << ' '
           << fs.columns_repaired << ' ' << fs.load_retries << ' '
           << fs.load_failures << ' ' << fs.rejected_cycles << ' '
           << fs.fallback_cycles;
        return os.str();
    };
    const std::string want = stats_for(0);
    for (int block_size : kBlockSizes) EXPECT_EQ(stats_for(block_size), want);
}

// ---------------------------------------------------------------- campaign

TEST(CampaignStream, ReportJsonByteIdenticalAcrossBlockSizes) {
    const std::vector<fleet::Scenario> scenarios = fleet::SweepBuilder()
                                                       .noise_levels({0.0, 1e-3})
                                                       .upset_rates({0.0, 0.5})
                                                       .cycles(3)
                                                       .build();
    ASSERT_EQ(scenarios.size(), 4u);

    // Per-sample reference path, single-threaded: the ground truth bytes.
    fleet::CampaignOptions reference(1);
    reference.stream_block_ticks = 0;
    const std::string want = fleet::CampaignReport::from(
                                 fleet::CampaignRunner(reference).run(scenarios))
                                 .render_json();

    // Streamed campaigns on worker threads (thread_local block reuse in
    // play) must render the very same bytes.
    for (int block_size : {1, 64, 4096}) {
        fleet::CampaignOptions options(2);
        options.stream_block_ticks = block_size;
        const std::string json = fleet::CampaignReport::from(
                                     fleet::CampaignRunner(options).run(scenarios))
                                     .render_json();
        EXPECT_EQ(json, want) << "stream_block_ticks " << block_size;
    }
}

}  // namespace
}  // namespace refpga
