#include <gtest/gtest.h>

#include "refpga/common/contracts.hpp"
#include "refpga/common/fixed.hpp"
#include "refpga/common/rng.hpp"
#include "refpga/common/strong_id.hpp"
#include "refpga/common/table.hpp"

namespace refpga {
namespace {

// ---------------------------------------------------------------- contracts

TEST(Contracts, ExpectsPassesOnTrue) { EXPECT_NO_THROW(REFPGA_EXPECTS(1 + 1 == 2)); }

TEST(Contracts, ExpectsThrowsOnFalse) {
    EXPECT_THROW(REFPGA_EXPECTS(false), ContractViolation);
}

TEST(Contracts, MessageNamesTheExpression) {
    try {
        REFPGA_ENSURES(2 < 1);
        FAIL() << "should have thrown";
    } catch (const ContractViolation& e) {
        EXPECT_NE(std::string(e.what()).find("2 < 1"), std::string::npos);
    }
}

// ---------------------------------------------------------------- strong id

struct FooTag {};
struct BarTag {};
using FooId = StrongId<FooTag>;
using BarId = StrongId<BarTag>;

TEST(StrongId, DefaultIsInvalid) {
    FooId id;
    EXPECT_FALSE(id.valid());
}

TEST(StrongId, ValueRoundTrip) {
    FooId id{42};
    EXPECT_TRUE(id.valid());
    EXPECT_EQ(id.value(), 42u);
}

TEST(StrongId, Comparison) {
    EXPECT_EQ(FooId{3}, FooId{3});
    EXPECT_NE(FooId{3}, FooId{4});
    EXPECT_LT(FooId{3}, FooId{4});
}

TEST(StrongId, DistinctTagsAreDistinctTypes) {
    static_assert(!std::is_same_v<FooId, BarId>);
}

TEST(StrongId, Hashable) {
    std::hash<FooId> h;
    EXPECT_EQ(h(FooId{7}), h(FooId{7}));
}

// ---------------------------------------------------------------- fixed

TEST(Fixed, FromIntRoundTrip) {
    const Q16 v = Q16::from_int(-5);
    EXPECT_DOUBLE_EQ(v.to_double(), -5.0);
}

TEST(Fixed, FromDoubleQuantizes) {
    const Q16 v = Q16::from_double(1.5);
    EXPECT_EQ(v.raw(), 3 << 15);
}

TEST(Fixed, Addition) {
    EXPECT_DOUBLE_EQ((Q16::from_double(1.25) + Q16::from_double(2.5)).to_double(), 3.75);
}

TEST(Fixed, MultiplicationKeepsScale) {
    EXPECT_DOUBLE_EQ((Q16::from_double(1.5) * Q16::from_double(2.0)).to_double(), 3.0);
}

TEST(Fixed, DivisionExact) {
    EXPECT_DOUBLE_EQ((Q16::from_double(3.0) / Q16::from_double(2.0)).to_double(), 1.5);
}

TEST(Fixed, SaturatesInsteadOfWrapping) {
    const Q16 big = Q16::from_double(32767.0);
    const Q16 sum = big + big;
    EXPECT_EQ(sum.raw(), Q16::kMaxRaw);
}

TEST(Fixed, DivisionByZeroViolatesContract) {
    EXPECT_THROW(Q16::from_int(1) / Q16{}, ContractViolation);
}

class FixedMulProperty : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(FixedMulProperty, MatchesDoubleWithinLsb) {
    const auto [a, b] = GetParam();
    const double got = (Q16::from_double(a) * Q16::from_double(b)).to_double();
    EXPECT_NEAR(got, a * b, 1.0 / 32768.0 * (std::abs(a) + std::abs(b) + 1.0));
}

INSTANTIATE_TEST_SUITE_P(Pairs, FixedMulProperty,
                         ::testing::Values(std::pair{0.5, 0.5}, std::pair{-1.5, 2.25},
                                           std::pair{3.0, -7.125},
                                           std::pair{-0.0625, -16.0},
                                           std::pair{100.0, 0.01}));

// ---------------------------------------------------------------- rng

TEST(Rng, DeterministicForSeed) {
    Rng a(123);
    Rng b(123);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
    Rng a(1);
    Rng b(2);
    EXPECT_NE(a.next_u64(), b.next_u64());
}

TEST(Rng, NextBelowInRange) {
    Rng r(7);
    for (int i = 0; i < 1000; ++i) EXPECT_LT(r.next_below(17), 17u);
}

TEST(Rng, DoubleInUnitInterval) {
    Rng r(7);
    for (int i = 0; i < 1000; ++i) {
        const double d = r.next_double();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, GaussianRoughlyCentred) {
    Rng r(42);
    double sum = 0.0;
    const int n = 10000;
    for (int i = 0; i < n; ++i) sum += r.next_gaussian();
    EXPECT_NEAR(sum / n, 0.0, 0.05);
}

// ---------------------------------------------------------------- table

TEST(Table, RendersHeaderAndRows) {
    Table t({"a", "bb"});
    t.add_row({"1", "2"});
    const std::string out = t.render();
    EXPECT_NE(out.find("| a "), std::string::npos);
    EXPECT_NE(out.find("| 1 "), std::string::npos);
    EXPECT_EQ(t.row_count(), 1u);
}

TEST(Table, RejectsWrongArity) {
    Table t({"a", "b"});
    EXPECT_THROW(t.add_row({"only-one"}), ContractViolation);
}

TEST(Table, NumFormatsPrecision) { EXPECT_EQ(Table::num(3.14159, 2), "3.14"); }

}  // namespace
}  // namespace refpga
