#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "refpga/common/contracts.hpp"
#include "refpga/common/fixed.hpp"
#include "refpga/common/interval_set.hpp"
#include "refpga/common/rng.hpp"
#include "refpga/common/strong_id.hpp"
#include "refpga/common/table.hpp"
#include "refpga/common/thread_pool.hpp"

namespace refpga {
namespace {

// ---------------------------------------------------------------- contracts

TEST(Contracts, ExpectsPassesOnTrue) { EXPECT_NO_THROW(REFPGA_EXPECTS(1 + 1 == 2)); }

TEST(Contracts, ExpectsThrowsOnFalse) {
    EXPECT_THROW(REFPGA_EXPECTS(false), ContractViolation);
}

TEST(Contracts, MessageNamesTheExpression) {
    try {
        REFPGA_ENSURES(2 < 1);
        FAIL() << "should have thrown";
    } catch (const ContractViolation& e) {
        EXPECT_NE(std::string(e.what()).find("2 < 1"), std::string::npos);
    }
}

// ---------------------------------------------------------------- strong id

struct FooTag {};
struct BarTag {};
using FooId = StrongId<FooTag>;
using BarId = StrongId<BarTag>;

TEST(StrongId, DefaultIsInvalid) {
    FooId id;
    EXPECT_FALSE(id.valid());
}

TEST(StrongId, ValueRoundTrip) {
    FooId id{42};
    EXPECT_TRUE(id.valid());
    EXPECT_EQ(id.value(), 42u);
}

TEST(StrongId, Comparison) {
    EXPECT_EQ(FooId{3}, FooId{3});
    EXPECT_NE(FooId{3}, FooId{4});
    EXPECT_LT(FooId{3}, FooId{4});
}

TEST(StrongId, DistinctTagsAreDistinctTypes) {
    static_assert(!std::is_same_v<FooId, BarId>);
}

TEST(StrongId, Hashable) {
    std::hash<FooId> h;
    EXPECT_EQ(h(FooId{7}), h(FooId{7}));
}

// ---------------------------------------------------------------- fixed

TEST(Fixed, FromIntRoundTrip) {
    const Q16 v = Q16::from_int(-5);
    EXPECT_DOUBLE_EQ(v.to_double(), -5.0);
}

TEST(Fixed, FromDoubleQuantizes) {
    const Q16 v = Q16::from_double(1.5);
    EXPECT_EQ(v.raw(), 3 << 15);
}

TEST(Fixed, Addition) {
    EXPECT_DOUBLE_EQ((Q16::from_double(1.25) + Q16::from_double(2.5)).to_double(), 3.75);
}

TEST(Fixed, MultiplicationKeepsScale) {
    EXPECT_DOUBLE_EQ((Q16::from_double(1.5) * Q16::from_double(2.0)).to_double(), 3.0);
}

TEST(Fixed, DivisionExact) {
    EXPECT_DOUBLE_EQ((Q16::from_double(3.0) / Q16::from_double(2.0)).to_double(), 1.5);
}

TEST(Fixed, SaturatesInsteadOfWrapping) {
    const Q16 big = Q16::from_double(32767.0);
    const Q16 sum = big + big;
    EXPECT_EQ(sum.raw(), Q16::kMaxRaw);
}

TEST(Fixed, DivisionByZeroViolatesContract) {
    EXPECT_THROW(Q16::from_int(1) / Q16{}, ContractViolation);
}

class FixedMulProperty : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(FixedMulProperty, MatchesDoubleWithinLsb) {
    const auto [a, b] = GetParam();
    const double got = (Q16::from_double(a) * Q16::from_double(b)).to_double();
    EXPECT_NEAR(got, a * b, 1.0 / 32768.0 * (std::abs(a) + std::abs(b) + 1.0));
}

INSTANTIATE_TEST_SUITE_P(Pairs, FixedMulProperty,
                         ::testing::Values(std::pair{0.5, 0.5}, std::pair{-1.5, 2.25},
                                           std::pair{3.0, -7.125},
                                           std::pair{-0.0625, -16.0},
                                           std::pair{100.0, 0.01}));

// ---------------------------------------------------------------- rng

TEST(Rng, DeterministicForSeed) {
    Rng a(123);
    Rng b(123);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
    Rng a(1);
    Rng b(2);
    EXPECT_NE(a.next_u64(), b.next_u64());
}

TEST(Rng, NextBelowInRange) {
    Rng r(7);
    for (int i = 0; i < 1000; ++i) EXPECT_LT(r.next_below(17), 17u);
}

TEST(Rng, DoubleInUnitInterval) {
    Rng r(7);
    for (int i = 0; i < 1000; ++i) {
        const double d = r.next_double();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, GaussianRoughlyCentred) {
    Rng r(42);
    double sum = 0.0;
    const int n = 10000;
    for (int i = 0; i < n; ++i) sum += r.next_gaussian();
    EXPECT_NEAR(sum / n, 0.0, 0.05);
}

// ---------------------------------------------------------------- table

TEST(Table, RendersHeaderAndRows) {
    Table t({"a", "bb"});
    t.add_row({"1", "2"});
    const std::string out = t.render();
    EXPECT_NE(out.find("| a "), std::string::npos);
    EXPECT_NE(out.find("| 1 "), std::string::npos);
    EXPECT_EQ(t.row_count(), 1u);
}

TEST(Table, RejectsWrongArity) {
    Table t({"a", "b"});
    EXPECT_THROW(t.add_row({"only-one"}), ContractViolation);
}

TEST(Table, NumFormatsPrecision) { EXPECT_EQ(Table::num(3.14159, 2), "3.14"); }

TEST(Table, StreamingPrimitivesComposeToRender) {
    // The static emit helpers are the streaming report path's building
    // blocks; driving them by hand must reproduce render() exactly.
    Table t({"a", "bb"});
    t.add_row({"1", "2"});
    t.add_row({"333", "4"});

    std::vector<std::size_t> widths = Table::widths_of({"a", "bb"});
    Table::grow_widths(widths, {"1", "2"});
    Table::grow_widths(widths, {"333", "4"});
    std::ostringstream out;
    Table::emit_rule(out, widths);
    Table::emit_row(out, widths, {"a", "bb"});
    Table::emit_rule(out, widths);
    Table::emit_row(out, widths, {"1", "2"});
    Table::emit_row(out, widths, {"333", "4"});
    Table::emit_rule(out, widths);
    EXPECT_EQ(out.str(), t.render());
}

// ---------------------------------------------------------------- intervals

TEST(IntervalSet, CoalescesAndTracksCoverage) {
    IntervalSet set;
    set.add(4, 2);
    set.add(0, 2);
    set.add(2, 2);  // bridges both neighbours
    ASSERT_EQ(set.intervals().size(), 1u);
    EXPECT_EQ(set.intervals()[0], (IntervalSet::Interval{0, 6}));
    EXPECT_EQ(set.count(), 6u);
    EXPECT_TRUE(set.contains(5));
    EXPECT_FALSE(set.contains(6));
    EXPECT_TRUE(set.covers_exactly(6));
    EXPECT_FALSE(set.covers_exactly(7));
}

TEST(IntervalSet, ReportsMissingGaps) {
    IntervalSet set;
    set.add(2, 2);
    set.add(8, 1);
    const auto gaps = set.missing(12);
    ASSERT_EQ(gaps.size(), 3u);
    EXPECT_EQ(gaps[0], (IntervalSet::Interval{0, 2}));
    EXPECT_EQ(gaps[1], (IntervalSet::Interval{4, 8}));
    EXPECT_EQ(gaps[2], (IntervalSet::Interval{9, 12}));
}

TEST(IntervalSet, RejectsOverlapsAndDegenerateRanges) {
    IntervalSet set;
    set.add(0, 4);
    EXPECT_THROW(set.add(3, 2), ContractViolation);
    EXPECT_THROW(set.add(0, 0), ContractViolation);
    EXPECT_FALSE(set.disjoint(2, 1));
    EXPECT_TRUE(set.disjoint(4, 1));
}

// ---------------------------------------------------------------- thread pool

TEST(ThreadPool, RunsEverySubmittedJob) {
    std::atomic<int> ran{0};
    ThreadPool pool(4);
    for (int i = 0; i < 200; ++i)
        pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
    pool.wait_idle();
    EXPECT_EQ(ran.load(), 200);
}

TEST(ThreadPool, ThrowingJobDoesNotKillTheWorkers) {
    // The documented contract: a job that lets an exception escape is
    // swallowed (and logged), and the pool keeps serving later jobs — error
    // reporting is the job's responsibility, as in CampaignRunner::run_one.
    std::atomic<int> ran{0};
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
        pool.submit([] { throw std::runtime_error("job failure"); });
        pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
    }
    pool.wait_idle();
    EXPECT_EQ(ran.load(), 50);

    // The pool is still healthy after the failures.
    pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
    pool.wait_idle();
    EXPECT_EQ(ran.load(), 51);
}

TEST(ThreadPool, NonStandardThrowIsAlsoContained) {
    std::atomic<int> ran{0};
    ThreadPool pool(2);
    pool.submit([] { throw 42; });  // NOLINT: deliberately non-std::exception
    pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
    pool.wait_idle();
    EXPECT_EQ(ran.load(), 1);
}

TEST(ThreadPool, DestructorDrainsTheQueueUnderContention) {
    // Jobs submitted from several threads while the pool is being torn down
    // elsewhere is a race by construction; here all submitters finish first,
    // then the destructor must run every queued job before joining.
    std::atomic<int> ran{0};
    {
        ThreadPool pool(3);
        std::vector<std::thread> submitters;
        submitters.reserve(4);
        for (int t = 0; t < 4; ++t)
            submitters.emplace_back([&pool, &ran] {
                for (int i = 0; i < 125; ++i)
                    pool.submit([&ran] {
                        ran.fetch_add(1, std::memory_order_relaxed);
                    });
            });
        for (std::thread& s : submitters) s.join();
        // No wait_idle(): destruction itself must drain all 500 jobs.
    }
    EXPECT_EQ(ran.load(), 500);
}

TEST(ThreadPool, WaitIdleIsAWholePoolBarrier) {
    std::atomic<int> ran{0};
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i)
        pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
    pool.wait_idle();
    // At the barrier nothing is in flight: the count is final, not racing.
    const int at_barrier = ran.load();
    EXPECT_EQ(at_barrier, 64);
    pool.wait_idle();  // idempotent on an idle pool
    EXPECT_EQ(ran.load(), at_barrier);
}

// ------------------------------------------------------- rng stream isolation

/// SplitMix64-style seed mix, the idiom the fault planner and the fleet use
/// to derive independent per-category streams from one campaign seed.
std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t salt) {
    std::uint64_t z = seed + salt * 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

TEST(Rng, DerivedStreamsDoNotCollide) {
    constexpr int kStreams = 4;
    constexpr int kDraws = 1000;
    std::set<std::uint64_t> seen;
    for (int s = 0; s < kStreams; ++s) {
        Rng rng(mix_seed(2008, static_cast<std::uint64_t>(s)));
        for (int i = 0; i < kDraws; ++i) seen.insert(rng.next_u64());
    }
    // 4000 draws from 2^64: any overlap within or across streams would be a
    // seeding bug, not chance.
    EXPECT_EQ(seen.size(), static_cast<std::size_t>(kStreams * kDraws));
}

TEST(Rng, DerivedStreamsAreUncorrelated) {
    Rng a(mix_seed(2008, 1));
    Rng b(mix_seed(2008, 2));
    constexpr int kDraws = 4096;
    double sum_a = 0.0, sum_b = 0.0, sum_ab = 0.0, sum_a2 = 0.0, sum_b2 = 0.0;
    for (int i = 0; i < kDraws; ++i) {
        const double x = a.next_double();
        const double y = b.next_double();
        sum_a += x;
        sum_b += y;
        sum_ab += x * y;
        sum_a2 += x * x;
        sum_b2 += y * y;
    }
    const double n = kDraws;
    const double cov = sum_ab / n - (sum_a / n) * (sum_b / n);
    const double var_a = sum_a2 / n - (sum_a / n) * (sum_a / n);
    const double var_b = sum_b2 / n - (sum_b / n) * (sum_b / n);
    const double r = cov / std::sqrt(var_a * var_b);
    EXPECT_LT(std::abs(r), 0.05);
}

TEST(Rng, StreamsAreIsolatedFromEachOther) {
    // Drawing from one instance must not perturb another: interleaved draws
    // reproduce the sequential sequences exactly.
    Rng a1(7), b1(8);
    std::vector<std::uint64_t> seq_a, seq_b;
    for (int i = 0; i < 100; ++i) seq_a.push_back(a1.next_u64());
    for (int i = 0; i < 100; ++i) seq_b.push_back(b1.next_u64());

    Rng a2(7), b2(8);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(a2.next_u64(), seq_a[static_cast<std::size_t>(i)]);
        EXPECT_EQ(b2.next_u64(), seq_b[static_cast<std::size_t>(i)]);
    }
}

}  // namespace
}  // namespace refpga
