// Integration tests: the whole measurement system, end to end.
#include <gtest/gtest.h>

#include "refpga/app/system.hpp"
#include "refpga/netlist/drc.hpp"
#include "refpga/netlist/stats.hpp"
#include "refpga/par/pack.hpp"
#include "refpga/par/placement.hpp"
#include "refpga/par/router.hpp"
#include "refpga/power/estimator.hpp"
#include "refpga/reconfig/busmacro.hpp"
#include "refpga/sim/simulator.hpp"

namespace refpga::app {
namespace {

SystemOptions options_for(SystemVariant variant) {
    SystemOptions options;
    options.variant = variant;
    return options;
}

class LevelAccuracy
    : public ::testing::TestWithParam<std::tuple<SystemVariant, double>> {};

// The core promise of the application: measured level tracks the true level,
// in every implementation variant.
TEST_P(LevelAccuracy, MeasuredLevelTracksTruth) {
    const auto [variant, level] = GetParam();
    MeasurementSystem system(options_for(variant));
    system.set_true_level(level);
    CycleReport report;
    // Let the EMA converge.
    const int cycles = variant == SystemVariant::Software ? 4 : 24;
    for (int i = 0; i < cycles; ++i) report = system.run_cycle();
    EXPECT_NEAR(report.level, level, 0.06)
        << variant_name(variant) << " at level " << level;
}

INSTANTIATE_TEST_SUITE_P(
    VariantsAndLevels, LevelAccuracy,
    ::testing::Combine(::testing::Values(SystemVariant::Software,
                                         SystemVariant::MonolithicHw,
                                         SystemVariant::ReconfiguredHw),
                       ::testing::Values(0.2, 0.5, 0.8)));

TEST(System, HwAndReconfigVariantsAgreeExactly) {
    // Reconfiguration changes *when* modules exist, not what they compute.
    MeasurementSystem mono(options_for(SystemVariant::MonolithicHw));
    MeasurementSystem reconf(options_for(SystemVariant::ReconfiguredHw));
    mono.set_true_level(0.6);
    reconf.set_true_level(0.6);
    for (int i = 0; i < 5; ++i) {
        const CycleReport a = mono.run_cycle();
        const CycleReport b = reconf.run_cycle();
        EXPECT_EQ(a.result.level.level_q15, b.result.level.level_q15) << i;
        EXPECT_EQ(a.result.cap.cap_pf_q4, b.result.cap.cap_pf_q4) << i;
    }
}

TEST(System, SoftwareProcessingIsOrdersOfMagnitudeSlower) {
    MeasurementSystem sw(options_for(SystemVariant::Software));
    MeasurementSystem hw(options_for(SystemVariant::MonolithicHw));
    sw.set_true_level(0.5);
    hw.set_true_level(0.5);
    const CycleReport sw_report = sw.run_cycle();
    const CycleReport hw_report = hw.run_cycle();
    // §4.2: ~7 ms vs ~7 us, "approximately a factor 1000".
    EXPECT_GT(sw_report.processing_s / hw_report.processing_s, 200.0);
    EXPECT_LT(sw_report.processing_s / hw_report.processing_s, 5000.0);
}

TEST(System, ReconfigOverheadAccountedPerCycle) {
    MeasurementSystem system(options_for(SystemVariant::ReconfiguredHw));
    system.set_true_level(0.5);
    const CycleReport first = system.run_cycle();
    // Three module loads in the first cycle.
    EXPECT_GT(first.reconfig_s, 0.0);
    EXPECT_EQ(system.controller().load_count(), 3);
    const CycleReport second = system.run_cycle();
    // Modules still swap every cycle (slot is shared).
    EXPECT_GT(second.reconfig_s, 0.0);
}

TEST(System, CycleFitsSchedulePeriod) {
    // Fig. 4: everything (sampling + reconfig + processing) fits in the
    // 100 ms measurement period, even over the slow JCAP.
    MeasurementSystem system(options_for(SystemVariant::ReconfiguredHw));
    system.set_true_level(0.5);
    const CycleReport report = system.run_cycle();
    EXPECT_LT(report.busy_s(), system.options().params.cycle_period_s);
    EXPECT_FALSE(report.phases.empty());
    // Phases are contiguous and ordered.
    double t = 0.0;
    for (const CyclePhase& phase : report.phases) {
        EXPECT_NEAR(phase.start_s, t, 1e-12) << phase.name;
        t += phase.duration_s;
    }
}

TEST(System, MonolithicHasNoReconfigPhases) {
    MeasurementSystem system(options_for(SystemVariant::MonolithicHw));
    system.set_true_level(0.4);
    const CycleReport report = system.run_cycle();
    EXPECT_EQ(report.reconfig_s, 0.0);
    for (const CyclePhase& phase : report.phases)
        EXPECT_EQ(phase.name.find("reconfig"), std::string::npos);
}

TEST(System, TracksLevelChangesOverTime) {
    MeasurementSystem system(options_for(SystemVariant::MonolithicHw));
    system.set_true_level(0.3);
    for (int i = 0; i < 24; ++i) (void)system.run_cycle();
    const double low = system.run_cycle().level;
    system.set_true_level(0.7);
    for (int i = 0; i < 24; ++i) (void)system.run_cycle();
    const double high = system.run_cycle().level;
    EXPECT_GT(high, low + 0.25);
}

// ---------------------------------------------------------------- netlist-level

TEST(SystemNetlist, CleanDrcAndBoundaries) {
    const SystemNetlist sys = build_system_netlist({});
    EXPECT_TRUE(netlist::run_drc(sys.nl).empty());
    EXPECT_TRUE(reconfig::check_boundaries(sys.nl).empty());
}

TEST(SystemNetlist, PartitionShapeMatchesTableOne) {
    const SystemNetlist sys = build_system_netlist({});
    const auto stats = netlist::partition_stats(sys.nl);
    const auto slices = [&](netlist::PartitionId p) {
        return stats[p.value()].slices();
    };
    // Static area is the largest partition (MicroBlaze et al.); amp/phase is
    // the largest reconfigurable module; filter the smallest.
    EXPECT_GT(slices(sys.static_part), slices(sys.amp_part));
    EXPECT_GT(slices(sys.amp_part), slices(sys.cap_part));
    EXPECT_GT(slices(sys.cap_part), slices(sys.filt_part));
}

TEST(SystemNetlist, StaticPlusLargestModuleFitsXc3s400) {
    // The paper's device-fit claim for the reconfigured system.
    const SystemNetlist sys = build_system_netlist({});
    const auto stats = netlist::partition_stats(sys.nl);
    const auto resident = stats[sys.static_part.value()].slices() +
                          stats[sys.amp_part.value()].slices();
    EXPECT_LE(resident, 3584u);
}

TEST(SystemNetlist, SimulatesWithoutX) {
    // Smoke: the full netlist levelizes and ticks (values all defined).
    const SystemNetlist sys = build_system_netlist(
        {AppParams{}, soc::SoftIpBudgets{}, /*include_soft_ip=*/false});
    sim::Simulator s(sys.nl);
    s.set_input("tick_16mhz", 1);
    s.run(64);
    SUCCEED();
}

TEST(SystemNetlist, PlacesAndRoutesOnXc3s1000) {
    // End-to-end physical flow in the monolithic (all modules resident)
    // scenario, which is Table 1's setting: XC3S1000, Fig. 2-style floorplan
    // with the static area on the left and the module columns on the right.
    const SystemNetlist sys = build_system_netlist({});
    const par::PackedDesign packed = par::pack(sys.nl);
    const fabric::Device dev(fabric::PartName::XC3S1000);
    par::Placement placement(dev, sys.nl, packed);
    const int split = dev.cols() / 2;
    placement.constrain(sys.static_part, {0, split, 0, dev.rows()});
    placement.constrain(sys.amp_part, {split, dev.cols(), 0, dev.rows()});
    placement.place_initial();
    par::RoutedDesign routed(placement, {});
    routed.route_all(par::RouteMode::Performance);
    EXPECT_GT(routed.total_capacitance_pf(), 0.0);
}

}  // namespace
}  // namespace refpga::app
