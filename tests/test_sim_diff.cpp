// Differential harness for the dual simulation engines (sim/engine.hpp).
//
// The event-driven engine is only allowed to exist because this suite pins
// it bit-for-bit to the cycle engine: across seeded random netlists (LUT
// soup, FFs with clock enables, feedback registers, counters, ROM and
// writable BRAM, MULT18) and several stimulus shapes, both engines must
// produce identical per-net toggle counts, identical net/BRAM/port state,
// the same changed-net sets, and byte-identical VCD dumps. A failure prints
// the seed, which reproduces deterministically on any platform.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <vector>

#include "refpga/common/rng.hpp"
#include "refpga/netlist/builder.hpp"
#include "refpga/sim/activity.hpp"
#include "refpga/sim/event_sim.hpp"
#include "refpga/sim/random_netlist.hpp"
#include "refpga/sim/simulator.hpp"
#include "refpga/sim/vcd.hpp"

namespace refpga::sim {
namespace {

using netlist::CellId;
using netlist::CellKind;
using netlist::NetId;

std::vector<NetId> all_nets(const netlist::Netlist& nl) {
    std::vector<NetId> nets;
    nets.reserve(nl.net_count());
    for (std::uint32_t i = 0; i < nl.net_count(); ++i) nets.push_back(NetId{i});
    return nets;
}

std::vector<std::uint32_t> sorted_changed(const SimEngine& sim) {
    std::vector<std::uint32_t> ids;
    ids.reserve(sim.changed_nets().size());
    for (const NetId n : sim.changed_nets()) ids.push_back(n.value());
    std::sort(ids.begin(), ids.end());
    return ids;
}

std::vector<CellId> writable_brams(const netlist::Netlist& nl) {
    std::vector<CellId> cells;
    for (std::uint32_t i = 0; i < nl.cell_count(); ++i) {
        const CellId id{i};
        const auto& c = nl.cell(id);
        if (c.kind == CellKind::Bram && nl.bram_config(c).writable)
            cells.push_back(id);
    }
    return cells;
}

void expect_equivalent(const netlist::Netlist& nl, const Simulator& ref,
                       const EventSimulator& fast, std::uint64_t seed) {
    ASSERT_EQ(ref.toggle_counts().size(), fast.toggle_counts().size());
    for (std::uint32_t i = 0; i < nl.net_count(); ++i) {
        EXPECT_EQ(ref.toggle_counts()[i], fast.toggle_counts()[i])
            << "toggle mismatch on net '" << nl.net(NetId{i}).name << "' (seed "
            << seed << ")";
        EXPECT_EQ(ref.net_value(NetId{i}), fast.net_value(NetId{i}))
            << "value mismatch on net '" << nl.net(NetId{i}).name << "' (seed "
            << seed << ")";
    }
    for (const CellId bram : writable_brams(nl)) {
        const auto& cfg = nl.bram_config(nl.cell(bram));
        for (std::size_t a = 0; a < cfg.depth(); ++a)
            EXPECT_EQ(ref.bram_word(bram, a), fast.bram_word(bram, a))
                << "BRAM word mismatch at addr " << a << " (seed " << seed << ")";
    }
}

/// Drives both engines with identical stimulus. `pattern` selects the
/// stimulus shape: 0 = new value every tick, 1 = sparse (every 7th tick),
/// 2 = bursts separated by long idle stretches. Returns the two VCD dumps.
std::pair<std::string, std::string> run_pair(std::uint64_t seed, int pattern,
                                             int cycles,
                                             const RandomNetlistOptions& opts = {}) {
    const netlist::Netlist nl = random_netlist(seed, opts);
    Simulator ref(nl);
    EventSimulator fast(nl);
    const std::vector<CellId> brams = writable_brams(nl);

    std::ostringstream ref_vcd, fast_vcd;
    VcdWriter ref_writer(ref_vcd, ref, all_nets(nl));
    VcdWriter fast_writer(fast_vcd, fast, all_nets(nl));
    ref_writer.sample(1);
    fast_writer.sample(1);

    Rng stim(seed ^ 0xD1FFull);
    const auto stim_mask =
        (std::uint64_t{1} << nl.find_port("stim")->nets.size()) - 1;
    for (int t = 1; t <= cycles; ++t) {
        const bool drive = pattern == 0 || (pattern == 1 && t % 7 == 0) ||
                           (pattern == 2 && (t / 11) % 2 == 0);
        if (drive) {
            const std::uint64_t value = stim.next_u64() & stim_mask;
            ref.set_input("stim", value);
            fast.set_input("stim", value);
            EXPECT_EQ(sorted_changed(ref), sorted_changed(fast))
                << "changed-net set diverged on set_input, seed " << seed;
        }
        if (!brams.empty() && stim.next_below(5) == 0) {
            // External memory pokes must re-arm the event engine's BRAM.
            const CellId bram = brams[stim.next_below(
                static_cast<std::uint32_t>(brams.size()))];
            const auto& cfg = nl.bram_config(nl.cell(bram));
            const auto addr = stim.next_below(static_cast<std::uint32_t>(cfg.depth()));
            const auto word = static_cast<std::uint32_t>(stim.next_u64()) &
                              ((1u << cfg.data_bits) - 1);
            ref.set_bram_word(bram, addr, word);
            fast.set_bram_word(bram, addr, word);
        }
        ref.tick();
        fast.tick();
        EXPECT_EQ(sorted_changed(ref), sorted_changed(fast))
            << "changed-net set diverged on tick " << t << ", seed " << seed;
        ref_writer.sample(1 + std::int64_t{t} * 1000);
        fast_writer.sample(1 + std::int64_t{t} * 1000);
        EXPECT_EQ(ref.get_port("probe"), fast.get_port("probe"))
            << "probe diverged on tick " << t << ", seed " << seed;
    }

    expect_equivalent(nl, ref, fast, seed);
    return {ref_vcd.str(), fast_vcd.str()};
}

// -------------------------------------------------------- randomized parity

/// >= 100 generated netlists x stimulus patterns (34 seeds x 3 patterns).
class EngineParity : public ::testing::TestWithParam<int> {};

TEST_P(EngineParity, TogglesStateAndVcdMatchAcrossRandomNetlists) {
    const int pattern = GetParam();
    for (std::uint64_t seed = 1; seed <= 34; ++seed) {
        const auto [ref_vcd, fast_vcd] = run_pair(seed, pattern, 48);
        EXPECT_EQ(ref_vcd, fast_vcd)
            << "VCD bytes diverged, seed " << seed << " pattern " << pattern;
        if (::testing::Test::HasFailure()) break;  // first seed is enough
    }
}

INSTANTIATE_TEST_SUITE_P(StimulusPatterns, EngineParity, ::testing::Values(0, 1, 2));

TEST(EngineParity, TopologyCornersMatch) {
    // Degenerate generator settings: each stresses one engine code path
    // (pure soup, no feedback; seq-only; BRAM-free; MULT-free).
    RandomNetlistOptions opts;
    opts.with_bram = false;
    for (std::uint64_t seed = 200; seed < 204; ++seed)
        (void)run_pair(seed, 0, 24, opts);

    opts = RandomNetlistOptions{};
    opts.with_mult = false;
    opts.with_feedback = false;
    for (std::uint64_t seed = 300; seed < 304; ++seed) {
        const netlist::Netlist nl = random_netlist(seed, opts);
        Simulator ref(nl);
        EventSimulator fast(nl);
        Rng stim(seed);
        const auto mask =
            (std::uint64_t{1} << nl.find_port("stim")->nets.size()) - 1;
        for (int t = 0; t < 32; ++t) {
            const std::uint64_t v = stim.next_u64() & mask;
            ref.set_input("stim", v);
            fast.set_input("stim", v);
            ref.tick();
            fast.tick();
        }
        expect_equivalent(nl, ref, fast, seed);
    }
}

TEST(EngineParity, MakeEngineDispatchesBothKinds) {
    const netlist::Netlist nl = random_netlist(7);
    const auto cycle = make_engine(EngineKind::Cycle, nl);
    const auto event = make_engine(EngineKind::Event, nl);
    EXPECT_EQ(cycle->kind(), EngineKind::Cycle);
    EXPECT_EQ(event->kind(), EngineKind::Event);
    cycle->run(16);
    event->run(16);
    EXPECT_EQ(cycle->toggle_counts(), event->toggle_counts());
    EXPECT_EQ(parse_engine_kind("cycle"), EngineKind::Cycle);
    EXPECT_EQ(parse_engine_kind("event"), EngineKind::Event);
    EXPECT_FALSE(parse_engine_kind("warp").has_value());
}

// -------------------------------------------------- golden activity (§4.3)

/// The Table-2 reference scenario (XC3S200 power fixture): an 8-bit counter
/// run for 256 cycles at 50 MHz. Bit i of a binary counter toggles exactly
/// 2^(8-i) times over a full period — pinned as exact integers for BOTH
/// engines so §4.3 power numbers can never drift without a visible diff.
template <typename Engine>
void check_counter_golden() {
    netlist::Netlist nl;
    const NetId clk = nl.add_input_port("clk", 1)[0];
    netlist::Builder b(nl, clk);
    const netlist::Bus q = b.counter(8, NetId{}, "q");
    nl.add_output_port("q", q);

    Engine sim(nl);
    sim.run(256);
    for (int bit = 0; bit < 8; ++bit)
        EXPECT_EQ(sim.toggle_counts()[q[static_cast<std::size_t>(bit)].value()],
                  256 >> bit)
            << "counter bit " << bit;

    // Rates at the Table-2 clock: bit 0 toggles every cycle -> 50 MHz.
    const ActivityMap activity = activity_from_simulation(sim, 50e6);
    EXPECT_DOUBLE_EQ(activity.rate_hz(q[0]), 50e6);
    EXPECT_DOUBLE_EQ(activity.rate_hz(q[7]), 50e6 / 128.0);
}

TEST(GoldenActivity, Table2CounterCycleEngine) { check_counter_golden<Simulator>(); }

TEST(GoldenActivity, Table2CounterEventEngine) {
    check_counter_golden<EventSimulator>();
}

TEST(GoldenActivity, Table2CounterEnginesAgreeNetForNet) {
    netlist::Netlist nl;
    const NetId clk = nl.add_input_port("clk", 1)[0];
    netlist::Builder b(nl, clk);
    nl.add_output_port("q", b.counter(8, NetId{}, "q"));
    Simulator ref(nl);
    EventSimulator fast(nl);
    ref.run(256);
    fast.run(256);
    EXPECT_EQ(ref.toggle_counts(), fast.toggle_counts());
}

}  // namespace
}  // namespace refpga::sim
