#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "refpga/common/rng.hpp"
#include "refpga/netlist/builder.hpp"
#include "refpga/par/pack.hpp"
#include "refpga/par/placement.hpp"
#include "refpga/par/placer.hpp"
#include "refpga/par/reallocate.hpp"
#include "refpga/par/router.hpp"
#include "refpga/par/timing.hpp"
#include "refpga/sim/activity.hpp"
#include "refpga/sim/simulator.hpp"

namespace refpga::par {
namespace {

using fabric::Device;
using fabric::PartName;
using fabric::Region;
using fabric::SliceCoord;
using netlist::Builder;
using netlist::Bus;
using netlist::Netlist;
using netlist::NetId;
using netlist::PartitionId;

struct Design {
    Netlist nl;
    NetId clk;
    Design() { clk = nl.add_input_port("clk", 1)[0]; }
};

// ---------------------------------------------------------------- pack

TEST(Pack, PairsLutWithDrivenFf) {
    Design d;
    Builder b(d.nl, d.clk);
    const Bus a = d.nl.add_input_port("a", 2);
    const NetId lut = b.and_(a[0], a[1]);
    const NetId q = b.ff(lut);
    d.nl.add_output_port("q", Bus{q});
    const PackedDesign packed = pack(d.nl);
    const auto lut_cell = d.nl.net(lut).driver.cell;
    const auto ff_cell = d.nl.net(q).driver.cell;
    EXPECT_EQ(packed.slice_of(lut_cell), packed.slice_of(ff_cell));
}

TEST(Pack, TwoLutsPerSlice) {
    Design d;
    Builder b(d.nl, d.clk);
    const Bus a = d.nl.add_input_port("a", 8);
    d.nl.add_output_port("o", b.not_bus(a));
    const PackedDesign packed = pack(d.nl);
    EXPECT_EQ(packed.slice_count(), 4u);
}

TEST(Pack, PartitionsNeverShareSlices) {
    Design d;
    Builder b(d.nl, d.clk);
    const Bus a = d.nl.add_input_port("a", 3);
    (void)b.not_bus(a);
    const PartitionId p1 = d.nl.add_partition("mod");
    d.nl.set_current_partition(p1);
    (void)b.not_bus(a);
    const PackedDesign packed = pack(d.nl);
    for (const PackedSlice& s : packed.slices()) {
        for (const auto cell : s.luts)
            EXPECT_EQ(d.nl.cell(cell).partition, s.partition);
        for (const auto cell : s.ffs)
            EXPECT_EQ(d.nl.cell(cell).partition, s.partition);
    }
    const auto counts = packed.slices_per_partition(d.nl);
    EXPECT_EQ(counts[0], 2u);
    EXPECT_EQ(counts[1], 2u);
}

TEST(Pack, SeparatesBramMultPads) {
    Design d;
    Builder b(d.nl, d.clk);
    const Bus addr = d.nl.add_input_port("addr", 5);
    (void)b.rom_bram(addr, {1, 2, 3}, 8);
    const Bus x = d.nl.add_input_port("x", 8);
    d.nl.add_output_port("p", b.mul_mult18(x, x, 16, 0));
    const PackedDesign packed = pack(d.nl);
    EXPECT_EQ(packed.brams().size(), 1u);
    EXPECT_EQ(packed.mults().size(), 1u);
    EXPECT_GT(packed.pads().size(), 0u);
}

// ---------------------------------------------------------------- placement

struct Placed {
    Design d;
    PackedDesign packed;
    Device dev{PartName::XC3S200};

    explicit Placed(int counter_bits = 8) {
        Builder b(d.nl, d.clk);
        const Bus q = b.counter(counter_bits);
        d.nl.add_output_port("q", q);
        packed = pack(d.nl);
    }
};

TEST(Placement, InitialPlacementIsLegal) {
    Placed p;
    Placement placement(p.dev, p.d.nl, p.packed);
    placement.place_initial();
    std::set<std::tuple<int, int, int>> seen;
    for (std::uint32_t i = 0; i < p.packed.slice_count(); ++i) {
        const SliceCoord pos = placement.slice_pos(SliceId{i});
        EXPECT_TRUE(p.dev.valid_slice(pos));
        EXPECT_TRUE(seen.insert({pos.x, pos.y, pos.index}).second) << "overlap";
        EXPECT_EQ(placement.slice_at(pos), SliceId{i});
    }
}

TEST(Placement, RegionConstraintRespected) {
    Placed p;
    Placement placement(p.dev, p.d.nl, p.packed);
    const Region region{0, 4, 0, 4};
    placement.constrain(PartitionId{0}, region);
    placement.place_initial();
    for (std::uint32_t i = 0; i < p.packed.slice_count(); ++i) {
        const SliceCoord pos = placement.slice_pos(SliceId{i});
        EXPECT_TRUE(region.contains(pos.x, pos.y));
    }
}

TEST(Placement, TooSmallRegionThrows) {
    Placed p(32);
    Placement placement(p.dev, p.d.nl, p.packed);
    placement.constrain(PartitionId{0}, Region{0, 1, 0, 1});
    EXPECT_THROW(placement.place_initial(), ContractViolation);
}

TEST(Placement, SwapSitesMovesBoth) {
    Placed p;
    Placement placement(p.dev, p.d.nl, p.packed);
    placement.place_initial();
    const SliceCoord a = placement.slice_pos(SliceId{0});
    const SliceCoord empty{p.dev.cols() - 1, p.dev.rows() - 1, 3};
    ASSERT_FALSE(placement.slice_at(empty).valid());
    placement.swap_sites(a, empty);
    EXPECT_EQ(placement.slice_pos(SliceId{0}), empty);
    EXPECT_FALSE(placement.slice_at(a).valid());
}

TEST(Placement, ClockNetsAreDedicated) {
    Placed p;
    Placement placement(p.dev, p.d.nl, p.packed);
    placement.place_initial();
    EXPECT_TRUE(placement.dedicated_net(p.d.clk));
    EXPECT_EQ(placement.net_hpwl(p.d.clk), 0);
}

// ---------------------------------------------------------------- placer

TEST(Placer, AnnealReducesOrKeepsCost) {
    Placed p(16);
    Placement placement(p.dev, p.d.nl, p.packed);
    placement.place_initial();
    PlacerOptions options;
    options.seed = 3;
    options.effort = 0.5;
    const PlacerResult result = anneal(placement, options);
    EXPECT_LE(result.final_cost, result.initial_cost);
    EXPECT_GT(result.moves_tried, 0);
}

TEST(Placer, PreservesLegalityAndRegions) {
    Placed p(16);
    Placement placement(p.dev, p.d.nl, p.packed);
    const Region region{0, 6, 0, 6};
    placement.constrain(PartitionId{0}, region);
    placement.place_initial();
    PlacerOptions options;
    options.effort = 0.3;
    (void)anneal(placement, options);
    std::set<std::tuple<int, int, int>> seen;
    for (std::uint32_t i = 0; i < p.packed.slice_count(); ++i) {
        const SliceCoord pos = placement.slice_pos(SliceId{i});
        EXPECT_TRUE(region.contains(pos.x, pos.y));
        EXPECT_TRUE(seen.insert({pos.x, pos.y, pos.index}).second);
    }
}

TEST(Placer, DeterministicForSeed) {
    Placed p1(12);
    Placed p2(12);
    Placement a(p1.dev, p1.d.nl, p1.packed);
    Placement b(p2.dev, p2.d.nl, p2.packed);
    a.place_initial();
    b.place_initial();
    PlacerOptions options;
    options.seed = 99;
    options.effort = 0.3;
    (void)anneal(a, options);
    (void)anneal(b, options);
    for (std::uint32_t i = 0; i < p1.packed.slice_count(); ++i)
        EXPECT_EQ(a.slice_pos(SliceId{i}), b.slice_pos(SliceId{i}));
}

// ---------------------------------------------------------------- router

struct Routed {
    Placed p;
    Placement placement;
    explicit Routed(int bits = 12) : p(bits), placement(p.dev, p.d.nl, p.packed) {
        placement.place_initial();
    }
};

TEST(Router, RoutesAllNets) {
    Routed r;
    RoutedDesign routed(r.placement, {});
    routed.route_all(RouteMode::Performance);
    for (std::uint32_t i = 0; i < r.p.d.nl.net_count(); ++i) {
        const NetId net{i};
        if (r.placement.dedicated_net(net)) continue;
        const auto& nr = routed.route(net);
        EXPECT_TRUE(nr.routed);
        EXPECT_EQ(nr.sinks.size(), r.p.d.nl.net(net).sinks.size());
    }
}

TEST(Router, LowPowerModeUsesLessCapacitance) {
    Routed r(16);
    RoutedDesign perf(r.placement, {});
    perf.route_all(RouteMode::Performance);
    RoutedDesign low(r.placement, {});
    low.route_all(RouteMode::LowPower);
    EXPECT_LE(low.total_capacitance_pf(), perf.total_capacitance_pf());
}

TEST(Router, PerformanceModeIsFasterOnLongNets) {
    Design d;
    Builder b(d.nl, d.clk);
    const Bus a = d.nl.add_input_port("a", 1);
    const NetId n1 = b.not_(a[0]);
    // The consumer lives in another partition constrained to the far corner,
    // so net n1 must span the device.
    const auto far = d.nl.add_partition("far");
    d.nl.set_current_partition(far);
    const NetId n2 = b.not_(n1);
    d.nl.add_output_port("o", Bus{n2});
    const PackedDesign packed = pack(d.nl);
    const Device dev(PartName::XC3S400);
    Placement placement(dev, d.nl, packed);
    placement.constrain(PartitionId{0}, Region{0, 2, 0, 2});
    placement.constrain(far, Region{dev.cols() - 2, dev.cols(), dev.rows() - 2,
                                    dev.rows()});
    placement.place_initial();

    RoutedDesign perf(placement, {});
    perf.route_all(RouteMode::Performance);
    RoutedDesign low(placement, {});
    low.route_all(RouteMode::LowPower);
    EXPECT_LT(perf.route(n1).max_delay_ps(), low.route(n1).max_delay_ps());
    EXPECT_LT(low.route(n1).capacitance_pf(), perf.route(n1).capacitance_pf());
}

TEST(Router, ReRouteReleasesChannels) {
    Routed r(16);
    RoutedDesign routed(r.placement, {});
    routed.route_all(RouteMode::Performance);
    const double before = routed.total_capacitance_pf();
    for (int pass = 0; pass < 2; ++pass)
        for (std::uint32_t i = 0; i < r.p.d.nl.net_count(); ++i)
            if (!r.placement.dedicated_net(NetId{i}))
                routed.reroute_net(NetId{i}, RouteMode::Performance);
    EXPECT_NEAR(routed.total_capacitance_pf(), before, before * 0.1);
}

TEST(Router, RenderRouteShowsDriver) {
    Routed r;
    RoutedDesign routed(r.placement, {});
    routed.route_all(RouteMode::Performance);
    for (std::uint32_t i = 0; i < r.p.d.nl.net_count(); ++i) {
        const NetId net{i};
        if (r.placement.dedicated_net(net) || r.p.d.nl.net(net).sinks.empty())
            continue;
        const std::string view = render_route(routed, net);
        EXPECT_NE(view.find('D'), std::string::npos);
        break;
    }
}

TEST(Router, SwitchPowerFormula) {
    // 10 pF at 50 MHz toggle, 1.2 V: P = 0.5 * 10e-12 * 1.44 * 50e6 = 360 uW.
    EXPECT_NEAR(switch_power_uw(10.0, 50e6, 1.2), 360.0, 1e-6);
}

// ---------------------------------------------------------------- timing

TEST(Timing, DeeperLogicHasLongerCriticalPath) {
    auto critical_for = [](int depth) {
        Design d;
        Builder b(d.nl, d.clk);
        const Bus a = d.nl.add_input_port("a", 1);
        NetId n = b.ff(a[0]);
        for (int i = 0; i < depth; ++i) n = b.not_(n);
        (void)b.ff(n);
        const PackedDesign packed = pack(d.nl);
        const Device dev(PartName::XC3S200);
        Placement placement(dev, d.nl, packed);
        placement.place_initial();
        RoutedDesign routed(placement, {});
        routed.route_all(RouteMode::Performance);
        return analyze_timing(routed).critical_path_ps;
    };
    const double d2 = critical_for(2);
    const double d8 = critical_for(8);
    EXPECT_GT(d8, d2);
    EXPECT_GT(d2, 0.0);
}

TEST(Timing, ReportsCriticalCells) {
    Routed r(8);
    RoutedDesign routed(r.placement, {});
    routed.route_all(RouteMode::Performance);
    const TimingReport report = analyze_timing(routed);
    EXPECT_GT(report.critical_path_ps, 0.0);
    EXPECT_FALSE(report.critical_cells.empty());
    EXPECT_GT(report.fmax_mhz(), 0.0);
}

// ---------------------------------------------------------------- reallocate

TEST(Reallocate, ReducesHotNetPowerWithoutRaisingTotal) {
    Design d;
    Builder b(d.nl, d.clk);
    const Bus q = b.counter(8);
    Bus x = q;
    for (int i = 0; i < 3; ++i) x = b.not_bus(x);
    d.nl.add_output_port("o", x);
    const PackedDesign packed = pack(d.nl);
    const Device dev(PartName::XC3S400);
    Placement placement(dev, d.nl, packed);
    placement.place_initial();

    // Scatter slices to create long, power-hungry nets.
    Rng rng(5);
    for (std::uint32_t i = 0; i < packed.slice_count(); ++i) {
        const SliceCoord target{
            static_cast<int>(rng.next_below(static_cast<std::uint32_t>(dev.cols()))),
            static_cast<int>(rng.next_below(static_cast<std::uint32_t>(dev.rows()))),
            static_cast<int>(rng.next_below(4))};
        if (!placement.slice_at(target).valid())
            placement.swap_sites(placement.slice_pos(SliceId{i}), target);
    }

    RoutedDesign routed(placement, {});
    routed.route_all(RouteMode::Performance);

    sim::Simulator simulator(d.nl);
    simulator.run(512);
    const sim::ActivityMap activity = sim::activity_from_simulation(simulator, 50e6);

    ReallocateOptions options;
    options.net_count = 5;
    const ReallocateReport report =
        optimize_net_power(placement, routed, activity, options);

    ASSERT_EQ(report.nets.size(), 5u);
    // The paper's invariant: total dynamic power decreased, not increased.
    EXPECT_LE(report.total_after_uw, report.total_before_uw);
    EXPECT_LE(report.nets[0].after_uw, report.nets[0].before_uw);
}

TEST(Reallocate, HonoursTimingGate) {
    Design d;
    Builder b(d.nl, d.clk);
    const Bus q = b.counter(6);
    d.nl.add_output_port("o", b.not_bus(q));
    const PackedDesign packed = pack(d.nl);
    const Device dev(PartName::XC3S200);
    Placement placement(dev, d.nl, packed);
    placement.place_initial();
    RoutedDesign routed(placement, {});
    routed.route_all(RouteMode::Performance);

    sim::Simulator simulator(d.nl);
    simulator.run(128);
    const sim::ActivityMap activity = sim::activity_from_simulation(simulator, 50e6);

    ReallocateOptions options;
    options.net_count = 3;
    options.timing_slack = 1.50;
    const ReallocateReport report =
        optimize_net_power(placement, routed, activity, options);
    EXPECT_LE(report.critical_after_ps, report.critical_before_ps * 1.5 + 1.0);
}

TEST(Reallocate, CaptureRoutesProducesViews) {
    Design d;
    Builder b(d.nl, d.clk);
    const Bus q = b.counter(4);
    d.nl.add_output_port("o", b.not_bus(q));
    const PackedDesign packed = pack(d.nl);
    const Device dev(PartName::XC3S200);
    Placement placement(dev, d.nl, packed);
    placement.place_initial();
    RoutedDesign routed(placement, {});
    routed.route_all(RouteMode::Performance);
    sim::Simulator simulator(d.nl);
    simulator.run(64);
    const auto activity = sim::activity_from_simulation(simulator, 50e6);
    ReallocateOptions options;
    options.net_count = 1;
    options.capture_routes = true;
    const auto report = optimize_net_power(placement, routed, activity, options);
    ASSERT_EQ(report.nets.size(), 1u);
    EXPECT_FALSE(report.nets[0].route_before.empty());
    EXPECT_FALSE(report.nets[0].route_after.empty());
}

}  // namespace
}  // namespace refpga::par
