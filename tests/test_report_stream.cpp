// Merge semantics of the streaming report path: a ReportAccumulator fed
// outcome batches in any partition and any arrival order must render the
// byte-identical report to the single-process CampaignReport, and must do
// so holding only O(batch) decoded rows in memory.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include <unistd.h>

#include "refpga/common/contracts.hpp"
#include "refpga/fleet/campaign.hpp"
#include "refpga/fleet/outcome_codec.hpp"
#include "refpga/fleet/report.hpp"
#include "refpga/fleet/report_stream.hpp"
#include "refpga/fleet/scenario.hpp"

namespace refpga::fleet {
namespace {

using app::SystemVariant;
using fabric::PartName;

std::string temp_spool(const char* tag) {
    return testing::TempDir() + "refpga_spool_" + tag + "_" +
           std::to_string(::getpid()) + ".jsonl";
}

// Small but multi-axis sweep: two variants, two parts, two ports.
std::vector<Scenario> plain_sweep() {
    return SweepBuilder{}
        .variants({SystemVariant::MonolithicHw, SystemVariant::ReconfiguredHw})
        .parts({PartName::XC3S200, PartName::XC3S400})
        .ports({PortKind::Jcap, PortKind::JcapAccelerated})
        .cycles(2)
        .campaign_seed(404)
        .build();
}

// Fault-heavy sweep so the report carries the fault metric columns.
std::vector<Scenario> fault_sweep() {
    fault::FaultSpec defaults;
    defaults.load_corruption_prob = 0.10;
    defaults.glitch_prob_per_cycle = 0.10;
    return SweepBuilder{}
        .variants({SystemVariant::ReconfiguredHw})
        .ports({PortKind::Jcap, PortKind::Icap})
        .upset_rates({0.0, 0.2, 1.0})
        .fault_defaults(defaults)
        .cycles(4)
        .campaign_seed(405)
        .build();
}

CampaignResult run_reference(const std::vector<Scenario>& sweep) {
    return CampaignRunner(CampaignOptions(2)).run(sweep);
}

/// Splits [0, n) into random contiguous batches and returns them in a
/// random arrival order.
std::vector<std::pair<std::size_t, std::size_t>> random_partition(
    std::size_t n, std::mt19937& rng) {
    std::vector<std::pair<std::size_t, std::size_t>> parts;
    std::size_t cursor = 0;
    while (cursor < n) {
        std::uniform_int_distribution<std::size_t> len(1, std::min<std::size_t>(
                                                              4, n - cursor));
        const std::size_t count = len(rng);
        parts.emplace_back(cursor, count);
        cursor += count;
    }
    std::shuffle(parts.begin(), parts.end(), rng);
    return parts;
}

void expect_identical_renderings(const CampaignResult& result,
                                 const char* tag,
                                 const std::string& metrics_json = "") {
    CampaignReport reference = CampaignReport::from(result);
    if (!metrics_json.empty()) reference.attach_metrics_json(metrics_json);
    const std::string want_text = reference.render_text();
    const std::string want_json = reference.render_json();

    std::mt19937 rng(20080808);
    for (int round = 0; round < 5; ++round) {
        ReportAccumulator acc(result.outcomes.size(), temp_spool(tag));
        if (!metrics_json.empty()) acc.attach_metrics_json(metrics_json);
        for (const auto& [first, count] :
             random_partition(result.outcomes.size(), rng)) {
            const std::vector<ScenarioOutcome> batch(
                result.outcomes.begin() + static_cast<std::ptrdiff_t>(first),
                result.outcomes.begin() +
                    static_cast<std::ptrdiff_t>(first + count));
            acc.add(first, batch);
        }
        ASSERT_TRUE(acc.complete());
        EXPECT_EQ(acc.render_text(), want_text) << "round " << round;
        EXPECT_EQ(acc.render_json(), want_json) << "round " << round;
        EXPECT_LE(acc.max_retained_rows(), 4u);
    }
}

TEST(ReportStream, RandomPartitionsRenderIdenticalText) {
    expect_identical_renderings(run_reference(plain_sweep()), "plain");
}

TEST(ReportStream, FaultMetricsSurviveStreamingMerge) {
    expect_identical_renderings(run_reference(fault_sweep()), "fault");
}

TEST(ReportStream, AttachedObservabilityJsonIsPreserved) {
    expect_identical_renderings(run_reference(plain_sweep()), "obs",
                                "{\"metrics\":{\"demo\":1}}");
}

TEST(ReportStream, EncodedLinesCommitLikeDecodedOutcomes) {
    const CampaignResult result = run_reference(plain_sweep());
    const std::string want = CampaignReport::from(result).render_text();

    ReportAccumulator acc(result.outcomes.size(), temp_spool("encoded"));
    std::vector<std::string> lines;
    for (const ScenarioOutcome& o : result.outcomes)
        lines.push_back(encode_outcome_line(o));
    // Commit back half first to exercise out-of-order segment merge.
    const std::size_t half = lines.size() / 2;
    acc.add_encoded(half, {lines.begin() + static_cast<std::ptrdiff_t>(half),
                           lines.end()});
    acc.add_encoded(0, {lines.begin(),
                        lines.begin() + static_cast<std::ptrdiff_t>(half)});
    ASSERT_TRUE(acc.complete());
    EXPECT_EQ(acc.render_text(), want);
}

TEST(ReportStream, CodecRoundTripsEveryFieldBitExactly) {
    const CampaignResult result = run_reference(fault_sweep());
    for (const ScenarioOutcome& o : result.outcomes) {
        const ScenarioOutcome back = decode_outcome_line(encode_outcome_line(o));
        EXPECT_EQ(back.scenario.name, o.scenario.name);
        EXPECT_EQ(back.scenario.seed, o.scenario.seed);
        EXPECT_EQ(back.ok, o.ok);
        // Bit-level equality, not approximate: reports derive percentiles
        // from these values, so any rounding would break byte-identity.
        const auto bits = [](double v) {
            std::uint64_t u = 0;
            std::memcpy(&u, &v, sizeof u);
            return u;
        };
        EXPECT_EQ(bits(back.level_error_mean), bits(o.level_error_mean));
        EXPECT_EQ(bits(back.level_error_max), bits(o.level_error_max));
        EXPECT_EQ(bits(back.dynamic_mw), bits(o.dynamic_mw));
        EXPECT_EQ(bits(back.availability), bits(o.availability));
        EXPECT_EQ(bits(back.mttr_ms), bits(o.mttr_ms));
        EXPECT_EQ(back.upsets_injected, o.upsets_injected);
        EXPECT_EQ(back.fallback_cycles, o.fallback_cycles);
        EXPECT_EQ(back.fitted_part, o.fitted_part);
        EXPECT_EQ(back.device_fits, o.device_fits);
    }
}

TEST(ReportStream, CodecRejectsMalformedLines) {
    const CampaignResult result = run_reference(plain_sweep());
    const std::string line = encode_outcome_line(result.outcomes[0]);
    EXPECT_THROW((void)decode_outcome_line(""), CodecError);
    EXPECT_THROW((void)decode_outcome_line(line.substr(0, line.size() / 2)),
                 CodecError);
    EXPECT_THROW((void)decode_outcome_line(line + "x"), CodecError);
    std::string wrong_key = line;
    wrong_key.replace(wrong_key.find("\"name\""), 6, "\"nom\" ");
    EXPECT_THROW((void)decode_outcome_line(wrong_key), CodecError);
}

TEST(ReportStream, DuplicateCommitIsRejected) {
    const CampaignResult result = run_reference(plain_sweep());
    ReportAccumulator acc(result.outcomes.size(), temp_spool("dup"));
    acc.add(0, {result.outcomes.begin(), result.outcomes.begin() + 2});
    EXPECT_THROW(acc.add(1, {result.outcomes.begin() + 1,
                             result.outcomes.begin() + 3}),
                 ContractViolation);
}

TEST(ReportStream, MarkPartialRendersExpectedCountAndMissingRanges) {
    const CampaignResult result = run_reference(plain_sweep());
    ASSERT_GE(result.outcomes.size(), 8u);

    // Commit [0, 3) and [5, 7) of an 8-scenario expectation, then declare
    // the run partial: both renderings must carry the expected count and the
    // exact gaps, so a degraded report can never pass for a complete one.
    ReportAccumulator acc(8, temp_spool("partial"));
    acc.add(0, {result.outcomes.begin(), result.outcomes.begin() + 3});
    acc.add(5, {result.outcomes.begin() + 5, result.outcomes.begin() + 7});
    ASSERT_FALSE(acc.complete());
    EXPECT_FALSE(acc.is_partial());
    acc.mark_partial();
    ASSERT_TRUE(acc.is_partial());

    const std::string text = acc.render_text();
    EXPECT_NE(text.find("campaign: 5 scenarios"), std::string::npos);
    EXPECT_NE(
        text.find("partial: 5/8 scenarios committed; missing: [3, 5) [7, 8)\n"),
        std::string::npos);
    const std::string json = acc.render_json();
    EXPECT_NE(
        json.find("\"partial\":{\"expected_count\":8,"
                  "\"missing_ranges\":[[3,5],[7,8]]}"),
        std::string::npos);
}

TEST(ReportStream, UnmarkedIncompleteAccumulatorOmitsPartialAnnotations) {
    const CampaignResult result = run_reference(plain_sweep());
    ReportAccumulator acc(8, temp_spool("nopartial"));
    acc.add(0, {result.outcomes.begin(), result.outcomes.begin() + 3});
    EXPECT_EQ(acc.render_text().find("partial:"), std::string::npos);
    EXPECT_EQ(acc.render_json().find("\"partial\""), std::string::npos);
}

// The memory bound must hold for sweeps far larger than anything a test can
// afford to execute, so this one synthesizes outcomes instead of running
// them: 5000 scenarios committed in 64-row batches never retain more than
// 64 decoded rows.
TEST(ReportStream, RetainedRowsStayBoundedOnLargeSweeps) {
    constexpr std::size_t kScenarios = 5000;
    constexpr std::size_t kBatch = 64;

    ReportAccumulator acc(kScenarios, temp_spool("large"));
    std::size_t index = 0;
    while (index < kScenarios) {
        const std::size_t count = std::min(kBatch, kScenarios - index);
        std::vector<ScenarioOutcome> batch(count);
        for (std::size_t i = 0; i < count; ++i) {
            ScenarioOutcome& o = batch[i];
            o.scenario.name = "synthetic-" + std::to_string(index + i);
            o.scenario.seed = index + i;
            o.ok = true;
            o.level_error_mean = 1e-3 * static_cast<double>(index + i);
            o.availability = 1.0;
            o.fitted_part = "xc3s400";
            o.device_fits = true;
        }
        acc.add(index, batch);
        index += count;
    }
    ASSERT_TRUE(acc.complete());
    EXPECT_EQ(acc.committed(), kScenarios);
    EXPECT_EQ(acc.max_retained_rows(), kBatch);
    // Rendering streams the spool: it must succeed and cover every row.
    const std::string text = acc.render_text();
    EXPECT_NE(text.find("synthetic-0 "), std::string::npos);
    EXPECT_NE(text.find("synthetic-4999"), std::string::npos);
}

}  // namespace
}  // namespace refpga::fleet
