#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "refpga/analog/delta_sigma.hpp"
#include "refpga/analog/dsp.hpp"
#include "refpga/analog/frontend.hpp"
#include "refpga/analog/tank.hpp"
#include "refpga/common/contracts.hpp"

namespace refpga::analog {
namespace {

// ---------------------------------------------------------------- dsp

TEST(Dsp, FftOfImpulseIsFlat) {
    std::vector<std::complex<double>> x(8, {0.0, 0.0});
    x[0] = {1.0, 0.0};
    fft(x);
    for (const auto& v : x) EXPECT_NEAR(std::abs(v), 1.0, 1e-12);
}

TEST(Dsp, FftOfSineConcentratesInBin) {
    const int n = 256;
    const int k = 10;
    std::vector<double> x(n);
    for (int i = 0; i < n; ++i) x[i] = std::sin(2.0 * M_PI * k * i / n);
    const auto spec = fft_real(x);
    // Bin k carries amplitude n/2.
    EXPECT_NEAR(std::abs(spec[k]), n / 2.0, 1e-9);
    EXPECT_LT(std::abs(spec[k + 3]), 1e-9);
}

TEST(Dsp, FftRejectsNonPowerOfTwo) {
    std::vector<std::complex<double>> x(6);
    EXPECT_THROW(fft(x), ContractViolation);
}

TEST(Dsp, GoertzelMatchesFftBin) {
    const int n = 128;
    const int k = 7;
    std::vector<double> x(n);
    for (int i = 0; i < n; ++i)
        x[i] = 0.8 * std::cos(2.0 * M_PI * k * i / n + 0.6);
    const AmpPhase g = goertzel(x, k);
    EXPECT_NEAR(g.amplitude, 0.8, 1e-9);
    EXPECT_NEAR(g.phase_rad, 0.6, 1e-9);
}

TEST(Dsp, AnalyzeToneOfPureSine) {
    const int n = 4096;
    const int k = 64;
    std::vector<double> x(n);
    for (int i = 0; i < n; ++i) x[i] = 0.5 * std::sin(2.0 * M_PI * k * i / n);
    const ToneQuality q = analyze_tone(x, k);
    EXPECT_NEAR(q.fundamental_amplitude, 0.5, 0.02);
    EXPECT_LT(q.thd_db, -80.0);
    EXPECT_GT(q.sndr_db, 80.0);
}

TEST(Dsp, AnalyzeToneSeesDistortion) {
    const int n = 4096;
    const int k = 64;
    std::vector<double> clean(n);
    std::vector<double> dirty(n);
    for (int i = 0; i < n; ++i) {
        const double w = 2.0 * M_PI * k * i / n;
        clean[i] = std::sin(w);
        dirty[i] = std::sin(w) + 0.05 * std::sin(3 * w);
    }
    EXPECT_GT(analyze_tone(dirty, k).thd_db, analyze_tone(clean, k).thd_db + 30.0);
}

// ---------------------------------------------------------------- filters & modulators

TEST(RcFilter, StepResponseConvergesToInput) {
    RcFilter f(1e5, 1e7);
    double y = 0.0;
    for (int i = 0; i < 2000; ++i) y = f.step(1.0);
    EXPECT_NEAR(y, 1.0, 1e-3);
}

TEST(RcFilter, AttenuatesHighFrequency) {
    // 1 kHz cutoff, 1 MHz sampling: a 100 kHz tone should be crushed.
    RcFilter f(1e3, 1e6);
    double peak = 0.0;
    for (int i = 0; i < 20000; ++i) {
        const double y = f.step(std::sin(2.0 * M_PI * 1e5 * i / 1e6));
        if (i > 10000) peak = std::max(peak, std::abs(y));
    }
    EXPECT_LT(peak, 0.05);
}

TEST(DeltaSigmaDac, MeanTracksInput) {
    DeltaSigmaDac dac;
    for (const double u : {0.0, 0.5, -0.7, 0.9}) {
        dac.reset();
        double sum = 0.0;
        const int n = 20000;
        for (int i = 0; i < n; ++i) sum += dac.step(u);
        EXPECT_NEAR(sum / n, u, 0.01) << u;
    }
}

TEST(DeltaSigmaDac, OutputIsBinary) {
    DeltaSigmaDac dac;
    for (int i = 0; i < 100; ++i) {
        const double y = dac.step(0.3);
        EXPECT_TRUE(y == 1.0 || y == -1.0);
    }
}

TEST(DeltaSigmaAdc, DecimationRateHonoured) {
    DeltaSigmaAdc adc(8, 12);
    int outputs = 0;
    for (int i = 0; i < 80; ++i)
        if (adc.step(0.0)) ++outputs;
    EXPECT_EQ(outputs, 10);
}

class AdcLinearity : public ::testing::TestWithParam<double> {};

TEST_P(AdcLinearity, DcInputRecoveredProportionally) {
    const double u = GetParam();
    DeltaSigmaAdc adc(8, 12);
    double sum = 0.0;
    int count = 0;
    int seen = 0;
    for (int i = 0; i < 400000 && count < 2000; ++i) {
        const auto s = adc.step(u);
        if (!s) continue;
        ++seen;
        if (seen > 100) {  // skip CIC settling
            sum += *s;
            ++count;
        }
    }
    ASSERT_EQ(count, 2000);
    const double mean = sum / count / 2047.0;  // normalize to [-1, 1]
    EXPECT_NEAR(mean, u, 0.02) << u;
}

INSTANTIATE_TEST_SUITE_P(DcLevels, AdcLinearity,
                         ::testing::Values(-0.8, -0.3, 0.0, 0.25, 0.6));

// The recursive CIC (integrators at the modulator rate, combs at the
// decimated rate) must equal its textbook definition: the modulator bit
// stream convolved with ones(R) three times — a direct O(N*R) triple
// moving average — sampled at every R-th tick, then quantized identically.
TEST(DeltaSigmaAdc, CicMatchesMovingAverageReference) {
    for (const int decim : {2, 5, 8, 32}) {
        DeltaSigmaAdc adc(decim, 12);

        // w = ones(R) convolved with itself twice more (length 3R - 2).
        std::vector<std::int64_t> w(1, 1);
        for (int stage = 0; stage < 3; ++stage) {
            std::vector<std::int64_t> next(w.size() + decim - 1, 0);
            for (std::size_t i = 0; i < w.size(); ++i)
                for (int j = 0; j < decim; ++j) next[i + j] += w[i];
            w = std::move(next);
        }

        // Run the ADC while mirroring its modulator to capture the +/-1
        // bit stream the CIC actually integrates.
        const int outputs = 60;
        const int n = outputs * decim;
        double s1 = 0.0;
        double s2 = 0.0;
        std::vector<std::int64_t> bits;
        std::vector<std::int32_t> actual;
        for (int i = 0; i < n; ++i) {
            const double u = 0.4 * std::sin(2.0 * M_PI * i / (7.0 * decim)) + 0.1;
            const double y = s2 >= 0.0 ? 1.0 : -1.0;
            s1 += std::clamp(u, -1.0, 1.0) - y;
            s2 += s1 - y;
            bits.push_back(y > 0.0 ? 1 : -1);
            if (const auto pcm = adc.step(u)) actual.push_back(*pcm);
        }
        ASSERT_EQ(actual.size(), static_cast<std::size_t>(outputs));

        const double full_scale = std::pow(static_cast<double>(decim), 3.0);
        for (int m = 0; m < outputs; ++m) {
            const int t = (m + 1) * decim - 1;  // tick of the m-th PCM output
            std::int64_t v = 0;
            for (std::size_t j = 0; j < w.size() && static_cast<int>(j) <= t; ++j)
                v += w[j] * bits[static_cast<std::size_t>(t) - j];
            EXPECT_EQ(actual[static_cast<std::size_t>(m)],
                      DeltaSigmaAdc::quantize(v, full_scale,
                                              static_cast<double>(adc.max_code()),
                                              static_cast<double>(adc.min_code())))
                << "R=" << decim << " m=" << m;
        }
    }
}

TEST(DeltaSigmaAdc, QuantizeClampsSymmetrically) {
    // 8-bit range [-128, 127]: positive overloads saturate at max_code,
    // negative overloads at min_code — not at -max_code as the old
    // asymmetric clamp did.
    EXPECT_EQ(DeltaSigmaAdc::quantize(64, 64.0, 127.0, -128.0), 127);
    EXPECT_EQ(DeltaSigmaAdc::quantize(-64, 64.0, 127.0, -128.0), -127);
    EXPECT_EQ(DeltaSigmaAdc::quantize(70, 64.0, 127.0, -128.0), 127);
    EXPECT_EQ(DeltaSigmaAdc::quantize(-70, 64.0, 127.0, -128.0), -128);
    EXPECT_EQ(DeltaSigmaAdc::quantize(0, 64.0, 127.0, -128.0), 0);
}

TEST(DeltaSigmaAdc, OutputFitsOutputBitsUnderOverdrive) {
    DeltaSigmaAdc probe(4, 8);
    EXPECT_EQ(probe.max_code(), 127);
    EXPECT_EQ(probe.min_code(), -128);
    // Slam the modulator against both rails (inputs are clipped to [-1, 1]
    // internally): every PCM word must stay inside the 8-bit range.
    for (const double u : {-5.0, -1.0, 1.0, 5.0}) {
        DeltaSigmaAdc adc(4, 8);
        for (int i = 0; i < 400; ++i) {
            if (const auto s = adc.step(u)) {
                EXPECT_GE(*s, adc.min_code());
                EXPECT_LE(*s, adc.max_code());
            }
        }
    }
}

// ---------------------------------------------------------------- tank

TEST(Tank, CapacitanceTracksLevel) {
    TankParams params;
    TankCircuit tank(params, 16e6);
    tank.set_level(0.0);
    EXPECT_DOUBLE_EQ(tank.probe_capacitance_pf(), params.c_empty_pf);
    tank.set_level(1.0);
    EXPECT_DOUBLE_EQ(tank.probe_capacitance_pf(), params.c_full_pf);
    tank.set_level(0.5);
    EXPECT_DOUBLE_EQ(tank.probe_capacitance_pf(),
                     (params.c_empty_pf + params.c_full_pf) / 2.0);
}

TEST(Tank, LevelFromCapacitanceInverts) {
    TankParams params;
    for (double level : {0.0, 0.25, 0.5, 0.99}) {
        const double c =
            params.c_empty_pf + level * (params.c_full_pf - params.c_empty_pf);
        EXPECT_NEAR(level_from_capacitance(params, c), level, 1e-12);
    }
    EXPECT_EQ(level_from_capacitance(params, 0.0), 0.0);        // clamps
    EXPECT_EQ(level_from_capacitance(params, 1e6), 1.0);
}

TEST(Tank, SineDriveAmplitudeMatchesClosedForm) {
    TankParams params;
    params.noise_rms_v = 0.0;
    const double fs = 16e6;
    const double f = 500e3;
    TankCircuit tank(params, fs);
    tank.set_level(0.7);

    double peak_meas = 0.0;
    double peak_ref = 0.0;
    for (int i = 0; i < 4000; ++i) {
        const double drive = 0.5 * std::sin(2.0 * M_PI * f * i / fs);
        const auto out = tank.step(drive);
        if (i > 1000) {
            peak_meas = std::max(peak_meas, std::abs(out.meas_v));
            peak_ref = std::max(peak_ref, std::abs(out.ref_v));
        }
    }
    EXPECT_NEAR(peak_meas, 0.5 * std::abs(tank.meas_response(f)), 0.03 * peak_meas);
    EXPECT_NEAR(peak_ref, 0.5 * std::abs(tank.ref_response(f)), 0.03 * peak_ref);
}

TEST(Tank, MeasAmplitudeGrowsWithLevel) {
    TankParams params;
    params.noise_rms_v = 0.0;
    auto peak_at = [&](double level) {
        TankCircuit tank(params, 16e6);
        tank.set_level(level);
        double peak = 0.0;
        for (int i = 0; i < 3000; ++i) {
            const double drive = 0.5 * std::sin(2.0 * M_PI * 500e3 * i / 16e6);
            const auto out = tank.step(drive);
            if (i > 1000) peak = std::max(peak, std::abs(out.meas_v));
        }
        return peak;
    };
    EXPECT_GT(peak_at(0.9), 2.0 * peak_at(0.1));
}

// ---------------------------------------------------------------- front end

TEST(FrontEnd, ProducesPcmAtDecimatedRate) {
    FrontEnd fe;
    fe.tank().set_level(0.5);
    int pcm_count = 0;
    const int steps = 16 * 100;
    for (int i = 0; i < steps; ++i) {
        const double drive = std::sin(2.0 * M_PI * 500e3 * i / 16e6);
        const auto code =
            static_cast<std::uint8_t>(128.0 + 127.0 * drive);
        if (fe.step_code8(code)) ++pcm_count;
    }
    EXPECT_EQ(pcm_count, steps / fe.config().adc_decimation);
}

TEST(FrontEnd, MeasChannelSeesLevelDifference) {
    auto rms_at = [&](double level) {
        FrontEnd fe;
        fe.tank().set_level(level);
        double sum2 = 0.0;
        int n = 0;
        for (int i = 0; i < 16 * 2000; ++i) {
            const double drive = std::sin(2.0 * M_PI * 500e3 * i / 16e6);
            const auto pcm = fe.step_code8(
                static_cast<std::uint8_t>(128.0 + 127.0 * drive));
            if (pcm && i > 16 * 1000) {
                sum2 += static_cast<double>(pcm->meas) * pcm->meas;
                ++n;
            }
        }
        return std::sqrt(sum2 / n);
    };
    EXPECT_GT(rms_at(0.9), 1.5 * rms_at(0.1));
}

TEST(FrontEnd, DsBitDriveProducesCleanTone) {
    // The §4.1 check: delta-sigma DAC at 16 MSPS still yields a usable
    // 500 kHz excitation after reconstruction.
    FrontEnd fe;
    fe.tank().set_level(0.5);
    DeltaSigmaDac dac;
    std::vector<double> ref_samples;
    for (int i = 0; i < 16 * 6000 && ref_samples.size() < 4096; ++i) {
        const double u = 0.8 * std::sin(2.0 * M_PI * 500e3 * i / 16e6);
        const bool bit = dac.step(u) > 0.0;
        const auto pcm = fe.step_ds_bit(bit);
        if (pcm && i > 16 * 1000)
            ref_samples.push_back(static_cast<double>(pcm->ref) / 2047.0);
    }
    ASSERT_EQ(ref_samples.size(), 4096u);
    // PCM rate = 3.2 MHz, tone 500 kHz -> bin = 4096 * 500/3200 = 640.
    const ToneQuality q = analyze_tone(ref_samples, 640);
    EXPECT_GT(q.fundamental_amplitude, 0.10);
    // Per-sample SNDR is bounded by the delta-sigma in-band noise at this
    // modest oversampling; the pipeline's 256-sample correlation adds ~21 dB
    // of processing gain on top (verified in the system tests).
    EXPECT_GT(q.sndr_db, 10.0);
    EXPECT_LT(q.thd_db, -15.0);
    // The tone must actually sit at bin 640: scan for the spectral peak.
    const auto spec = fft_real(ref_samples);
    std::size_t peak = 1;
    for (std::size_t k = 1; k < spec.size() / 2; ++k)
        if (std::abs(spec[k]) > std::abs(spec[peak])) peak = k;
    EXPECT_EQ(peak, 640u);
}

}  // namespace
}  // namespace refpga::analog
