#include <gtest/gtest.h>

#include "refpga/common/contracts.hpp"
#include "refpga/fabric/device.hpp"
#include "refpga/fabric/part.hpp"
#include "refpga/fabric/wire.hpp"

namespace refpga::fabric {
namespace {

// ---------------------------------------------------------------- catalog

TEST(PartCatalog, HasEightSpartan3Parts) { EXPECT_EQ(spartan3_parts().size(), 8u); }

TEST(PartCatalog, SliceCountsMatchClbGeometry) {
    for (const Part& p : spartan3_parts())
        EXPECT_EQ(p.slices, p.clb_rows * p.clb_cols * 4) << p.id;
}

TEST(PartCatalog, Xc3s400Geometry) {
    const Part& p = part(PartName::XC3S400);
    EXPECT_EQ(p.slices, 3584);
    EXPECT_EQ(p.bram_blocks, 16);
    EXPECT_EQ(p.multipliers, 16);
}

TEST(PartCatalog, SortedAscendingBySize) {
    const auto parts = spartan3_parts();
    for (std::size_t i = 1; i < parts.size(); ++i) {
        EXPECT_GT(parts[i].slices, parts[i - 1].slices);
        EXPECT_GT(parts[i].config_bits, parts[i - 1].config_bits);
        EXPECT_GT(parts[i].quiescent_ma, parts[i - 1].quiescent_ma);
        EXPECT_GT(parts[i].unit_cost_usd, parts[i - 1].unit_cost_usd);
    }
}

TEST(PartCatalog, ParsePartRoundTrip) {
    for (const Part& p : spartan3_parts()) {
        const auto name = parse_part(p.id);
        ASSERT_TRUE(name.has_value()) << p.id;
        EXPECT_EQ(part(*name).id, p.id);
    }
    EXPECT_FALSE(parse_part("xc2v1000").has_value());
}

TEST(PartCatalog, SmallestFitPicksExactBoundary) {
    EXPECT_EQ(smallest_fit(3584, 0, 0), PartName::XC3S400);
    EXPECT_EQ(smallest_fit(3585, 0, 0), PartName::XC3S1000);
    EXPECT_EQ(smallest_fit(1, 17, 0), PartName::XC3S1000);
    EXPECT_FALSE(smallest_fit(100000, 0, 0).has_value());
}

// Device-fit boundaries at every slice count the paper's sizing study can
// land on: an exact fill picks the part, one more slice rolls to the next.
TEST(PartCatalog, SliceBoundariesAcrossTheCatalog) {
    EXPECT_EQ(smallest_fit(0, 0, 0), PartName::XC3S50);
    EXPECT_EQ(smallest_fit(768, 0, 0), PartName::XC3S50);
    EXPECT_EQ(smallest_fit(769, 0, 0), PartName::XC3S200);
    EXPECT_EQ(smallest_fit(1920, 0, 0), PartName::XC3S200);
    EXPECT_EQ(smallest_fit(1921, 0, 0), PartName::XC3S400);
    EXPECT_EQ(smallest_fit(7680, 0, 0), PartName::XC3S1000);
    EXPECT_EQ(smallest_fit(7681, 0, 0), PartName::XC3S1500);
    EXPECT_EQ(smallest_fit(13313, 0, 0), PartName::XC3S2000);
    EXPECT_EQ(smallest_fit(20481, 0, 0), PartName::XC3S4000);
    EXPECT_EQ(smallest_fit(27649, 0, 0), PartName::XC3S5000);
    // The catalog tops out at the XC3S5000's 33280 slices.
    EXPECT_EQ(smallest_fit(33280, 0, 0), PartName::XC3S5000);
    EXPECT_FALSE(smallest_fit(33281, 0, 0).has_value());
}

TEST(PartCatalog, BramAndMultiplierDemandsGateTheFitIndependently) {
    // A design tiny in slices still escalates on memory or DSP demand.
    EXPECT_EQ(smallest_fit(1, 4, 0), PartName::XC3S50);
    EXPECT_EQ(smallest_fit(1, 5, 0), PartName::XC3S200);
    EXPECT_EQ(smallest_fit(1, 12, 12), PartName::XC3S200);
    EXPECT_EQ(smallest_fit(1, 13, 0), PartName::XC3S400);
    EXPECT_EQ(smallest_fit(1, 0, 13), PartName::XC3S400);
    EXPECT_EQ(smallest_fit(1, 16, 16), PartName::XC3S400);
    EXPECT_EQ(smallest_fit(1, 0, 17), PartName::XC3S1000);
    // XC3S4000/5000 jump to 96/104 blocks; 97 needs the largest part.
    EXPECT_EQ(smallest_fit(1, 97, 0), PartName::XC3S5000);
    EXPECT_FALSE(smallest_fit(1, 105, 0).has_value());
    EXPECT_FALSE(smallest_fit(1, 0, 105).has_value());
    // All three demands must fit at once: slices force XC3S1000-class while
    // BRAM stays easy, and vice versa.
    EXPECT_EQ(smallest_fit(3585, 4, 4), PartName::XC3S1000);
    EXPECT_EQ(smallest_fit(100, 24, 0), PartName::XC3S1000);
}

TEST(PartCatalog, StaticPowerGrowsWithSize) {
    EXPECT_LT(part(PartName::XC3S200).static_power_mw(),
              part(PartName::XC3S1000).static_power_mw());
}

// The paper's static-power lever: dropping XC3S1000 -> XC3S400 must save a
// meaningful fraction of quiescent power.
TEST(PartCatalog, DownsizingSavesStaticPower) {
    const double p1000 = part(PartName::XC3S1000).static_power_mw();
    const double p400 = part(PartName::XC3S400).static_power_mw();
    EXPECT_GT((p1000 - p400) / p1000, 0.30);
}

// ---------------------------------------------------------------- wires

TEST(Wires, SpansAscendShortestFirst) {
    const auto types = all_wire_types();
    for (std::size_t i = 1; i < types.size(); ++i)
        EXPECT_GT(wire_params(types[i]).span, wire_params(types[i - 1]).span);
}

TEST(Wires, LongerWiresCostMoreCapacitancePerSegment) {
    const auto types = all_wire_types();
    for (std::size_t i = 1; i < types.size(); ++i)
        EXPECT_GT(wire_params(types[i]).capacitance_pf,
                  wire_params(types[i - 1]).capacitance_pf);
}

// The trade-off the paper's §4.3 exploits, stated as invariants: per tile
// reached, long wires are faster but burn more capacitance.
TEST(Wires, DelayPerTileFallsWithSpan) {
    const auto types = all_wire_types();
    for (std::size_t i = 1; i < types.size(); ++i) {
        const auto& a = wire_params(types[i - 1]);
        const auto& b = wire_params(types[i]);
        EXPECT_LT(b.delay_ps / b.span, a.delay_ps / a.span);
    }
}

TEST(Wires, CapacitancePerTileRisesWithSpan) {
    const auto types = all_wire_types();
    for (std::size_t i = 1; i < types.size(); ++i) {
        const auto& a = wire_params(types[i - 1]);
        const auto& b = wire_params(types[i]);
        EXPECT_GT(b.capacitance_pf / b.span, a.capacitance_pf / a.span);
    }
}

TEST(Wires, Names) {
    EXPECT_EQ(wire_type_name(WireType::Direct), "direct");
    EXPECT_EQ(wire_type_name(WireType::Long), "long");
}

// ---------------------------------------------------------------- device

class DeviceGeometry : public ::testing::TestWithParam<PartName> {};

TEST_P(DeviceGeometry, FullRegionCapacityEqualsSlices) {
    const Device dev(GetParam());
    EXPECT_EQ(dev.full_region().slice_capacity(), dev.slice_count());
}

TEST_P(DeviceGeometry, BramAndMultSitesMatchCatalog) {
    const Device dev(GetParam());
    EXPECT_EQ(static_cast<int>(dev.bram_sites().size()), dev.part().bram_blocks);
    EXPECT_EQ(static_cast<int>(dev.mult_sites().size()), dev.part().multipliers);
    for (const auto& s : dev.bram_sites()) EXPECT_TRUE(dev.valid_slice(s));
    for (const auto& s : dev.mult_sites()) EXPECT_TRUE(dev.valid_slice(s));
}

TEST_P(DeviceGeometry, PartialBitsScaleWithColumns) {
    const Device dev(GetParam());
    const auto one = dev.partial_bits(0, 1);
    const auto three = dev.partial_bits(0, 3);
    EXPECT_EQ(three, 3 * one);
    EXPECT_LT(dev.partial_bits(0, dev.cols()), dev.full_bits());
}

INSTANTIATE_TEST_SUITE_P(AllParts, DeviceGeometry,
                         ::testing::Values(PartName::XC3S50, PartName::XC3S200,
                                           PartName::XC3S400, PartName::XC3S1000,
                                           PartName::XC3S1500, PartName::XC3S2000,
                                           PartName::XC3S4000, PartName::XC3S5000));

TEST(Device, ValidSliceBounds) {
    const Device dev(PartName::XC3S50);
    EXPECT_TRUE(dev.valid_slice({0, 0, 0}));
    EXPECT_TRUE(dev.valid_slice({11, 15, 3}));
    EXPECT_FALSE(dev.valid_slice({12, 0, 0}));
    EXPECT_FALSE(dev.valid_slice({0, 16, 0}));
    EXPECT_FALSE(dev.valid_slice({0, 0, 4}));
    EXPECT_FALSE(dev.valid_slice({-1, 0, 0}));
}

TEST(Device, DistanceIsManhattan) {
    EXPECT_EQ(Device::distance({0, 0, 0}, {3, 4, 2}), 7);
    EXPECT_EQ(Device::distance({5, 5, 0}, {5, 5, 3}), 0);
}

TEST(Device, PartialBitsRejectsBadRange) {
    const Device dev(PartName::XC3S200);
    EXPECT_THROW((void)dev.partial_bits(3, 3), ContractViolation);
    EXPECT_THROW((void)dev.partial_bits(-1, 2), ContractViolation);
    EXPECT_THROW((void)dev.partial_bits(0, dev.cols() + 1), ContractViolation);
}

TEST(Device, RegionContains) {
    const Region r{2, 5, 1, 4};
    EXPECT_TRUE(r.contains(2, 1));
    EXPECT_TRUE(r.contains(4, 3));
    EXPECT_FALSE(r.contains(5, 3));
    EXPECT_FALSE(r.contains(4, 4));
    EXPECT_EQ(r.slice_capacity(), 3 * 3 * 4);
}

}  // namespace
}  // namespace refpga::fabric
