// Software-baseline tests: the MicroBlaze firmware must agree with the
// golden pipeline (exactly where its arithmetic is exact, within documented
// tolerance where the soft-multiply route pre-scales), and its cost structure
// must reproduce the paper's observations (>60 KB image, multi-ms runtime,
// SRAM and soft-multiply as the dominant factors).
#include <gtest/gtest.h>

#include <cmath>

#include "refpga/app/golden.hpp"
#include "refpga/app/software.hpp"
#include "refpga/soc/assembler.hpp"

namespace refpga::app {
namespace {

AppParams params() { return AppParams{}; }

std::vector<std::int32_t> tone_window(const AppParams& p, double amp, double phi) {
    std::vector<std::int32_t> w(static_cast<std::size_t>(p.window));
    for (int n = 0; n < p.window; ++n)
        w[static_cast<std::size_t>(n)] = static_cast<std::int32_t>(
            std::lround(amp * std::sin(2.0 * M_PI * p.bin * n / p.window + phi)));
    return w;
}

TEST(Software, SourceAssembles) {
    const std::string src = measurement_source(params());
    EXPECT_NO_THROW((void)soc::assemble(src));
}

TEST(Software, ImageExceedsSixtyKilobytes) {
    // §4.2: "the software algorithms required more than 60 Kbyte of memory,
    // which made it necessary to store the code in external SRAM".
    const auto program = soc::assemble(measurement_source(params()));
    EXPECT_GT(program.size_bytes() - 0x80000000u, 60u * 1024u);
}

TEST(Software, PhaseAndExactStagesMatchGolden) {
    const AppParams p = params();
    const auto meas = tone_window(p, 1500.0, 0.4);
    const auto ref = tone_window(p, 900.0, -0.2);
    const SoftwareRun run = run_software_cycle(meas, ref, p);

    const auto acc = golden::accumulate_window(meas, ref, p);
    const auto gm = golden::amp_phase(acc.i_meas, acc.q_meas, p);
    const auto gr = golden::amp_phase(acc.i_ref, acc.q_ref, p);
    // Phases are computed with identical integer CORDIC: exact.
    EXPECT_EQ(run.phase_meas, gm.phase);
    EXPECT_EQ(run.phase_ref, gr.phase);
    // Amplitudes use the documented pre-scaled soft-multiply: small error.
    EXPECT_NEAR(static_cast<double>(run.amp_meas), static_cast<double>(gm.amplitude),
                6.0);
    EXPECT_NEAR(static_cast<double>(run.amp_ref), static_cast<double>(gr.amplitude),
                6.0);
}

TEST(Software, HwMultiplierVariantAmplitudeIsExact) {
    const AppParams p = params();
    const auto meas = tone_window(p, 1500.0, 0.4);
    const auto ref = tone_window(p, 900.0, -0.2);
    SoftwareConfig config;
    config.hw_multiplier = true;
    const SoftwareRun run = run_software_cycle(meas, ref, p, config);

    const auto acc = golden::accumulate_window(meas, ref, p);
    const auto gm = golden::amp_phase(acc.i_meas, acc.q_meas, p);
    const auto gr = golden::amp_phase(acc.i_ref, acc.q_ref, p);
    EXPECT_EQ(run.amp_meas, gm.amplitude);
    EXPECT_EQ(run.amp_ref, gr.amplitude);
    EXPECT_EQ(run.phase_meas, gm.phase);

    // With exact amplitudes, ratio/capacity/level are exact too.
    const auto cap = golden::capacity(gm, gr, p);
    EXPECT_EQ(run.ratio_q12, cap.ratio_q12);
    EXPECT_EQ(run.cap_pf_q4, cap.cap_pf_q4);
    golden::FilterState filter(p);
    golden::FilterState::Output out{};
    for (int i = 0; i < 64; ++i) out = filter.step(cap.cap_pf_q4);
    EXPECT_EQ(run.level_q15, out.level_q15);
}

TEST(Software, CapacityCloseToGoldenWithSoftMultiply) {
    const AppParams p = params();
    const auto meas = tone_window(p, 1650.0, 0.1);
    const auto ref = tone_window(p, 1100.0, 0.1);
    const SoftwareRun run = run_software_cycle(meas, ref, p);
    // Expected C ~ 1.5 * C_ref = 330 pF.
    EXPECT_NEAR(static_cast<double>(run.cap_pf_q4) / 16.0, 330.0, 6.0);
}

TEST(Software, RuntimeIsMilliseconds) {
    // The 7 ms headline: legacy configuration (soft multiply, SRAM code).
    const AppParams p = params();
    const auto meas = tone_window(p, 1200.0, 0.0);
    const auto ref = tone_window(p, 1000.0, 0.0);
    const SoftwareRun run = run_software_cycle(meas, ref, p);
    const double seconds = run.seconds(p.system_clock_hz);
    EXPECT_GT(seconds, 2e-3);
    EXPECT_LT(seconds, 20e-3);
}

TEST(Software, HwMultiplierSpeedsUpSignificantly) {
    const AppParams p = params();
    const auto meas = tone_window(p, 1200.0, 0.0);
    const auto ref = tone_window(p, 1000.0, 0.0);
    const SoftwareRun soft = run_software_cycle(meas, ref, p);
    SoftwareConfig config;
    config.hw_multiplier = true;
    const SoftwareRun hw = run_software_cycle(meas, ref, p, config);
    EXPECT_LT(hw.cycles, soft.cycles / 2);
}

TEST(Software, BramResidentCodeIsFaster) {
    // The rewrite direction: the same kernel without the firmware bulk and
    // fetched from LMB BRAM runs several times faster.
    const AppParams p = params();
    const auto meas = tone_window(p, 1200.0, 0.0);
    const auto ref = tone_window(p, 1000.0, 0.0);
    const SoftwareRun sram = run_software_cycle(meas, ref, p);

    SoftwareConfig bram_config;
    bram_config.code_in_sram = false;
    bram_config.padding_bytes = 0;
    SoftwareLayout layout;
    // Data buffers stay in SRAM (they model the converters' buffers).
    const SoftwareRun bram = [&] {
        // run_software_cycle uses the default layout; code_in_sram=false
        // assembles from address 0.
        return run_software_cycle(meas, ref, p, bram_config);
    }();
    EXPECT_EQ(bram.phase_meas, sram.phase_meas);  // identical results
    EXPECT_LT(bram.cycles, sram.cycles / 2);
    (void)layout;
}

TEST(Software, DeterministicAcrossRuns) {
    const AppParams p = params();
    const auto meas = tone_window(p, 800.0, 1.0);
    const auto ref = tone_window(p, 700.0, 0.5);
    const SoftwareRun a = run_software_cycle(meas, ref, p);
    const SoftwareRun b = run_software_cycle(meas, ref, p);
    EXPECT_EQ(a.level_q15, b.level_q15);
    EXPECT_EQ(a.cycles, b.cycles);
}

}  // namespace
}  // namespace refpga::app
